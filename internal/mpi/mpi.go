// Package mpi is an MPICH-derived MPI implementation, reproducing the
// structure described in §4 of the paper.
//
// MPICH's four layers map to this package as follows: the MPI bindings
// and point-to-point binding layer are the methods on Comm; the Abstract
// Device Interface is the Engine (matching queues, eager and rendezvous
// protocols, request objects); and the Channel Interface at the bottom —
// MPICH's minimal five-function porting layer — is an xport.Endpoint:
// control packets and data chunks are transport messages. Running the
// same Engine over the BillBoard Protocol, TCP-lite sockets or the
// native Myrinet API is exactly how the paper gets comparable MPI
// numbers across networks.
//
// Collective operations are built on point-to-point trees, as in stock
// MPICH — except that, like the paper's modified MPICH, MPI_Bcast and
// MPI_Barrier can instead use the BillBoard Protocol's single-step
// multicast directly (Comm.BcastMcast / Comm.BarrierMcast, selected
// automatically when the transport has native multicast and
// Config.McastCollectives is set).
//
// Protocol notes. Messages at or below Config.EagerMax use the eager
// protocol: one control packet carrying the envelope, followed by the
// payload in Config.ChunkSize chunks on the same FIFO stream (the paper's
// SCRAMNet channel device moves these with programmed I/O, which is why
// the MPI-layer latency slope is steeper than the BBP API's — compare
// Figures 1 and 3). Longer messages use rendezvous: request-to-send,
// clear-to-send, then data, so no unexpected-buffer space is ever
// committed to large transfers.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Internal tags (never matched by user wildcards because user tags are
// non-negative and AnyTag only matches what a request asks for).
const (
	tagBcast   = -100
	tagBarrier = -101
	tagReduce  = -102
	tagGather  = -103
	tagScatter = -104
	tagGatherA = -105
	tagAll2All = -106
	tagSplit   = -107
	tagScan    = -108
)

// Errors returned by MPI operations.
var (
	ErrTruncated = errors.New("mpi: receive buffer smaller than message")
	ErrBadRank   = errors.New("mpi: rank out of range")
	ErrBadTag    = errors.New("mpi: user tags must be non-negative")
	ErrProtocol  = errors.New("mpi: protocol violation")
	ErrTimeout   = errors.New("mpi: wait timed out")
)

// DeadPeerError reports that a blocking operation was abandoned because
// the transport's failure detector confirmed a required peer dead. It
// is returned within the detector's confirmation window — bounded by
// liveness.Config, not by retry budgets or WaitTimeout — by sends and
// waits naming the peer, and by collectives when any group member dies
// (the operation can never complete once a participant is gone).
// Errors from a transport without liveness still surface as ErrTimeout.
type DeadPeerError struct {
	Rank int // world rank of the dead peer
}

func (e *DeadPeerError) Error() string {
	return fmt.Sprintf("mpi: peer (world rank %d) confirmed dead by the failure detector", e.Rank)
}

// PartitionError reports that a blocking operation was abandoned
// because the transport declared a ring partition: the required peers
// are unreachable, not dead, so the operation is fenced rather than
// failed-over. On the minority side every operation returns it (the
// arc lost quorum); on the majority side only operations naming an
// unreachable peer do — majority collectives instead complete over the
// quorum. Like DeadPeerError it surfaces within the detector's
// confirmation window, never as a hang.
type PartitionError struct {
	Minority bool  // this rank is on the fenced (minority) side
	Peers    []int // world ranks on the far side of the cut
}

func (e *PartitionError) Error() string {
	side := "majority"
	if e.Minority {
		side = "minority"
	}
	return fmt.Sprintf("mpi: ring partition (%s side): peers %v unreachable", side, e.Peers)
}

// Status describes a completed receive.
type Status struct {
	Source int // communicator rank of the sender
	Tag    int
	Len    int
}

// Costs are the software overheads of the MPI layers above the
// transport, calibrated so that MPI adds the paper's ~37 µs constant
// over the BBP API (44 µs vs 6.5 µs for a 0-byte message).
type Costs struct {
	// SendOverhead / RecvOverhead are the fixed per-call costs of the
	// binding + ADI layers on each side.
	SendOverhead sim.Duration
	RecvOverhead sim.Duration
	// PerChunk is the channel-interface bookkeeping per data chunk.
	PerChunk sim.Duration
	// MatchCost is one queue search (posted or unexpected).
	MatchCost sim.Duration
	// CollOverhead is the per-call cost of the multicast fast-path
	// collectives, which short-circuit the MPI binding straight into
	// BillBoard API calls (much less than a full send/recv path — that
	// is how the paper's 37 µs barrier is possible at all).
	CollOverhead sim.Duration
	// CopyPerByte is charged when payload is staged through an
	// unexpected-message buffer instead of landing in the user buffer.
	CopyPerByte sim.Duration
}

// DefaultCosts returns the calibrated MPICH-layer costs (DESIGN.md §5).
func DefaultCosts() Costs {
	return Costs{
		SendOverhead: 27500 * sim.Nanosecond,
		RecvOverhead: 20000 * sim.Nanosecond,
		PerChunk:     1500 * sim.Nanosecond,
		MatchCost:    400 * sim.Nanosecond,
		CollOverhead: 6 * sim.Microsecond,
		CopyPerByte:  15 * sim.Nanosecond,
	}
}

// Config parameterizes the MPI engine.
type Config struct {
	// EagerMax is the largest message sent eagerly; beyond it the
	// rendezvous protocol runs.
	EagerMax int
	// ChunkSize is the channel-interface data packet size.
	ChunkSize int
	// CollChunk is the payload per multicast fast-path message.
	CollChunk int
	// McastCollectives selects the BBP-multicast implementations of
	// Bcast and Barrier when the transport supports native multicast.
	McastCollectives bool
	// DirectADI models the paper's first §7 future-work direction: an
	// Abstract Device Interface implemented directly on the BillBoard
	// API, removing the Channel Interface layer. Per-call binding costs
	// drop to 60% and per-chunk bookkeeping halves.
	DirectADI bool
	// WaitTimeout bounds blocking waits in virtual time (0 = forever).
	WaitTimeout sim.Duration
	// RndvZeroCopy enables the receiver-posted-window rendezvous path
	// on transports that implement xport.Windowed: the CTS reply
	// carries a data-partition window descriptor and the sender writes
	// payload straight into the receiver's partition through a bounded
	// chunk pipeline. Off (the default), the wire protocol is
	// byte-identical to the legacy sequential rendezvous.
	RndvZeroCopy bool
	// RndvPipelineDepth bounds how many chunks the windowed sender may
	// have in flight on the ring before it waits for the oldest one's
	// drain bound (<= 0 selects the default depth of 2; 1 degenerates
	// to a fully sequential window fill).
	RndvPipelineDepth int
	// Costs is the software cost model.
	Costs Costs
}

// defaultRndvPipelineDepth is the bounded-pipeline depth used when
// Config.RndvPipelineDepth is unset.
const defaultRndvPipelineDepth = 2

// maxWindowNaks bounds the kRNak/kRDone rewrite loop per transfer:
// after this many consecutive whole-window checksum mismatches the
// receiver gives the window up (kRFall) and the payload is resent on
// the sequential kRData path, which rides the billboard's per-message
// recovery machinery. Without the bound, persistent ring loss would
// cycle rewrite-and-renak until the wait timeout.
const maxWindowNaks = 3

// DefaultConfig returns the configuration used for the paper figures.
func DefaultConfig() Config {
	// ChunkSize equals EagerMax: the paper's channel device is a
	// minimal one, mapping MPID_SendChannel onto a single bbp_Send of
	// the whole buffer. With no chunk pipelining, the MESSAGE flag
	// follows the complete payload around the ring and the receiver's
	// I/O-bus read fully serializes behind the wire — which is exactly
	// why the MPI layer's latency slope is steeper than the BBP API's
	// (Figures 1 vs 3).
	return Config{
		EagerMax:    16 << 10,
		ChunkSize:   16 << 10,
		CollChunk:   1024,
		WaitTimeout: 5 * sim.Second,
		Costs:       DefaultCosts(),
	}
}

// envelope is the control-packet header (one per message, plus one per
// rendezvous handshake step).
const (
	kEager = 1
	kRTS   = 2
	kCTS   = 3
	kRData = 4
	// Receiver-posted-window rendezvous kinds (Config.RndvZeroCopy).
	// None of them is ever emitted when the feature is off, so the
	// legacy wire protocol stays byte-identical.
	kCTSW  = 5  // CTS carrying a window descriptor (envWinBytes long)
	kRDone = 6  // sender: window fully written (aux = payload checksum)
	kRNak  = 7  // receiver: checksum mismatch, rewrite the window
	kRAck  = 8  // receiver: payload verified, sender may complete
	kRRej  = 9  // sender: send abandoned, receiver may reclaim the window
	kRFall = 10 // receiver: nak budget spent, resend via sequential kRData

	envBytes = 24
	// envWinBytes is the kCTSW envelope length: the legacy 24 bytes
	// plus the window descriptor (offset and capacity words).
	envWinBytes = 32
	// collMagic prefixes multicast fast-path messages so the engine can
	// distinguish them from envelopes on the same FIFO stream.
	collMagic = 0xC0
)

type envelope struct {
	kind  byte
	ctx   uint32
	tag   int32
	total uint32
	reqID uint32
	aux   uint32 // CTS: receiver-side request id; kRDone: payload checksum
	// Window descriptor, carried only by kCTSW: the partition-relative
	// byte offset of the posted window and its capacity in bytes.
	winOff uint32
	winCap uint32
}

func encodeEnv(e envelope) []byte {
	n := envBytes
	if e.kind == kCTSW {
		n = envWinBytes
	}
	b := make([]byte, n)
	b[0] = e.kind
	binary.LittleEndian.PutUint32(b[4:], e.ctx)
	binary.LittleEndian.PutUint32(b[8:], uint32(e.tag))
	binary.LittleEndian.PutUint32(b[12:], e.total)
	binary.LittleEndian.PutUint32(b[16:], e.reqID)
	binary.LittleEndian.PutUint32(b[20:], e.aux)
	if e.kind == kCTSW {
		binary.LittleEndian.PutUint32(b[24:], e.winOff)
		binary.LittleEndian.PutUint32(b[28:], e.winCap)
	}
	return b
}

func decodeEnv(b []byte) (envelope, error) {
	if len(b) != envBytes && !(len(b) == envWinBytes && b[0] == kCTSW) {
		return envelope{}, fmt.Errorf("%w: %d-byte control packet", ErrProtocol, len(b))
	}
	env := envelope{
		kind:  b[0],
		ctx:   binary.LittleEndian.Uint32(b[4:]),
		tag:   int32(binary.LittleEndian.Uint32(b[8:])),
		total: binary.LittleEndian.Uint32(b[12:]),
		reqID: binary.LittleEndian.Uint32(b[16:]),
		aux:   binary.LittleEndian.Uint32(b[20:]),
	}
	if env.kind == kCTSW {
		if len(b) != envWinBytes {
			return envelope{}, fmt.Errorf("%w: %d-byte window CTS", ErrProtocol, len(b))
		}
		env.winOff = binary.LittleEndian.Uint32(b[24:])
		env.winCap = binary.LittleEndian.Uint32(b[28:])
	}
	return env, nil
}

// payloadCheck is the FNV-1a digest the windowed rendezvous uses to
// verify a window's contents: window writes carry no per-chunk
// descriptors or checksums (unlike billboard posts), so kRDone carries
// one digest over the whole payload and a mismatch triggers a kRNak
// rewrite of the window.
func payloadCheck(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// Request is a nonblocking operation handle.
type Request struct {
	eng    *Engine
	isSend bool
	done   bool
	err    error
	status Status

	// Receive state.
	buf  []byte
	ctx  uint32
	src  int // communicator rank or AnySource
	tag  int
	comm *Comm

	// Rendezvous-send state.
	data []byte
	dst  int // world rank
	id   uint32
	span trace.SpanID // open rndv span, closed when CTS releases the data

	// Windowed-rendezvous state (Config.RndvZeroCopy). peerID is the
	// other side's request id — on the receiver the sender's RTS id
	// (addressed by kRNak/kRAck), on the sender the receiver's CTS id
	// (addressed by kRDone). hasWin marks a live window reservation on
	// the receiver, released in handleRDone, on a kRRej/kRFall
	// hand-back, or when the wait is abandoned — immediately if the
	// borrower (winPeer, the sender's world rank) is confirmed dead,
	// otherwise parked as a zombie until the borrower is provably done
	// writing — so an aborted transfer never pins partition space and a
	// release never races a live sender's in-flight window stores. naks
	// counts consecutive kRDone checksum mismatches against
	// maxWindowNaks.
	peerID  uint32
	winOff  int
	winCap  int
	winPeer int
	hasWin  bool
	naks    int
}

// Done reports whether the operation has completed (poll without
// progressing; use Wait or Test to progress).
func (r *Request) Done() bool { return r.done }
