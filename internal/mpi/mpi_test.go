package mpi_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// run builds a world on the given network and executes body on every
// rank to completion.
func run(t testing.TB, net cluster.Network, nodes int, mcast bool, body func(p *sim.Proc, c *mpi.Comm)) *mpi.World {
	t.Helper()
	k := sim.NewKernel()
	_, w, err := cluster.NewMPIWorld(k, net, nodes, mcast)
	if err != nil {
		t.Fatal(err)
	}
	w.RunSPMD(k, body)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSendRecvAllNetworks(t *testing.T) {
	for _, net := range cluster.Networks {
		net := net
		t.Run(string(net), func(t *testing.T) {
			msg := []byte("mpi over " + string(net))
			run(t, net, 2, false, func(p *sim.Proc, c *mpi.Comm) {
				switch c.Rank() {
				case 0:
					if err := c.Send(p, 1, 7, msg); err != nil {
						t.Error(err)
					}
				case 1:
					buf := make([]byte, 64)
					st, err := c.Recv(p, 0, 7, buf)
					if err != nil {
						t.Error(err)
						return
					}
					if st.Source != 0 || st.Tag != 7 || !bytes.Equal(buf[:st.Len], msg) {
						t.Errorf("status=%+v buf=%q", st, buf[:st.Len])
					}
				}
			})
		})
	}
}

func TestZeroByteMessage(t *testing.T) {
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			if err := c.Send(p, 1, 0, nil); err != nil {
				t.Error(err)
			}
		} else {
			st, err := c.Recv(p, 0, 0, nil)
			if err != nil || st.Len != 0 {
				t.Errorf("st=%+v err=%v", st, err)
			}
		}
	})
}

func TestTagMatchingAndOrdering(t *testing.T) {
	// Two messages with different tags, received in reverse tag order:
	// matching must pick by tag, not arrival order.
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			if err := c.Send(p, 1, 1, []byte{1}); err != nil {
				t.Error(err)
			}
			if err := c.Send(p, 1, 2, []byte{2}); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 4)
			p.Delay(500 * sim.Microsecond) // both arrive unexpected
			if st, err := c.Recv(p, 0, 2, buf); err != nil || buf[0] != 2 || st.Tag != 2 {
				t.Errorf("tag-2 recv: %+v %v %d", st, err, buf[0])
			}
			if st, err := c.Recv(p, 0, 1, buf); err != nil || buf[0] != 1 || st.Tag != 1 {
				t.Errorf("tag-1 recv: %+v %v %d", st, err, buf[0])
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	run(t, cluster.SCRAMNet, 3, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			buf := make([]byte, 4)
			for i := 0; i < 2; i++ {
				st, err := c.Recv(p, mpi.AnySource, mpi.AnyTag, buf)
				if err != nil {
					t.Error(err)
					return
				}
				if int(buf[0]) != st.Source || st.Tag != 40+st.Source {
					t.Errorf("status %+v payload %d", st, buf[0])
				}
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("sources: %v", seen)
			}
		} else {
			p.Delay(sim.Duration(c.Rank()) * 200 * sim.Microsecond)
			if err := c.Send(p, 0, 40+c.Rank(), []byte{byte(c.Rank())}); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestNonOvertakingSameTag(t *testing.T) {
	const count = 30
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			for i := 0; i < count; i++ {
				if err := c.Send(p, 1, 5, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		} else {
			buf := make([]byte, 4)
			for i := 0; i < count; i++ {
				if _, err := c.Recv(p, 0, 5, buf); err != nil || int(buf[0]) != i {
					t.Errorf("recv %d got %d err=%v", i, buf[0], err)
					return
				}
			}
		}
	})
}

func TestRendezvousLargeMessage(t *testing.T) {
	const size = 100 << 10 // well above EagerMax
	payload := make([]byte, size)
	sim.NewRNG(5).Bytes(payload)
	w := run(t, cluster.FastEthernet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			if err := c.Send(p, 1, 9, payload); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, size)
			p.Delay(1 * sim.Millisecond) // force the RTS to arrive unexpected
			st, err := c.Recv(p, 0, 9, buf)
			if err != nil || st.Len != size || !bytes.Equal(buf, payload) {
				t.Errorf("rendezvous: st=%+v err=%v equal=%v", st, err, bytes.Equal(buf, payload))
			}
		}
	})
	if w.Engine(0).Stats().RndvSent != 1 {
		t.Errorf("RndvSent = %d, want 1", w.Engine(0).Stats().RndvSent)
	}
}

func TestEagerUnexpectedBuffering(t *testing.T) {
	w := run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			if err := c.Send(p, 1, 3, []byte("early bird")); err != nil {
				t.Error(err)
			}
		} else {
			p.Delay(2 * sim.Millisecond)
			// Progress the engine before posting the receive so the
			// eager message is staged through the unexpected queue.
			if ok, st := c.Iprobe(p, 0, 3); !ok || st.Len != 10 {
				t.Errorf("Iprobe: ok=%v st=%+v", ok, st)
			}
			buf := make([]byte, 32)
			st, err := c.Recv(p, 0, 3, buf)
			if err != nil || string(buf[:st.Len]) != "early bird" {
				t.Errorf("late recv: %+v %v", st, err)
			}
		}
	})
	if w.Engine(1).Stats().UnexpectedMsgs == 0 {
		t.Error("message should have landed in the unexpected queue")
	}
}

func TestTruncationError(t *testing.T) {
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			if err := c.Send(p, 1, 1, make([]byte, 100)); err != nil {
				t.Error(err)
			}
		} else {
			_, err := c.Recv(p, 0, 1, make([]byte, 10))
			if err != mpi.ErrTruncated {
				t.Errorf("err = %v, want ErrTruncated", err)
			}
		}
	})
}

func TestIsendIrecvWaitTest(t *testing.T) {
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			req, err := c.Isend(p, 1, 11, []byte("async"))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := c.Wait(p, req); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 16)
			req, err := c.Irecv(p, 0, 11, buf)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				done, st, err := c.Test(p, req)
				if err != nil {
					t.Error(err)
					return
				}
				if done {
					if string(buf[:st.Len]) != "async" {
						t.Errorf("got %q", buf[:st.Len])
					}
					return
				}
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		peer := 1 - c.Rank()
		out := []byte{byte(10 + c.Rank())}
		in := make([]byte, 1)
		st, err := c.Sendrecv(p, peer, 6, out, peer, 6, in)
		if err != nil || st.Len != 1 || in[0] != byte(10+peer) {
			t.Errorf("rank %d: st=%+v err=%v in=%d", c.Rank(), st, err, in[0])
		}
	})
}

func TestIprobe(t *testing.T) {
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			if err := c.Send(p, 1, 21, []byte{1, 2, 3}); err != nil {
				t.Error(err)
			}
		} else {
			if ok, _ := c.Iprobe(p, 0, 99); ok {
				t.Error("Iprobe matched wrong tag")
			}
			p.Delay(1 * sim.Millisecond)
			ok, st := c.Iprobe(p, 0, 21)
			if !ok || st.Len != 3 {
				t.Errorf("Iprobe: ok=%v st=%+v", ok, st)
			}
			// The message must still be receivable.
			buf := make([]byte, 8)
			if _, err := c.Recv(p, 0, 21, buf); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestBcastBothImplsAllRoots(t *testing.T) {
	for _, impl := range []string{"tree", "mcast"} {
		impl := impl
		t.Run(impl, func(t *testing.T) {
			for root := 0; root < 4; root++ {
				root := root
				payload := make([]byte, 700)
				sim.NewRNG(uint64(root)).Bytes(payload)
				run(t, cluster.SCRAMNet, 4, impl == "mcast", func(p *sim.Proc, c *mpi.Comm) {
					buf := make([]byte, len(payload))
					if c.Rank() == root {
						copy(buf, payload)
					}
					if err := c.Bcast(p, root, buf); err != nil {
						t.Error(err)
						return
					}
					if !bytes.Equal(buf, payload) {
						t.Errorf("rank %d root %d: payload mismatch", c.Rank(), root)
					}
				})
			}
		})
	}
}

func TestBcastMultiChunk(t *testing.T) {
	payload := make([]byte, 5000) // > CollChunk: multiple mcast messages
	sim.NewRNG(9).Bytes(payload)
	run(t, cluster.SCRAMNet, 4, true, func(p *sim.Proc, c *mpi.Comm) {
		buf := make([]byte, len(payload))
		if c.Rank() == 1 {
			copy(buf, payload)
		}
		if err := c.Bcast(p, 1, buf); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(buf, payload) {
			t.Errorf("rank %d: mismatch", c.Rank())
		}
	})
}

func TestBarrierBothImplsSynchronize(t *testing.T) {
	for _, impl := range []string{"tree", "mcast"} {
		impl := impl
		t.Run(impl, func(t *testing.T) {
			k := sim.NewKernel()
			_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, 4, impl == "mcast")
			if err != nil {
				t.Fatal(err)
			}
			exits := make([]sim.Time, 4)
			var lastArrival sim.Time
			w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
				// Staggered arrivals: nobody may exit before the last
				// process arrives.
				arrive := sim.Duration(c.Rank()) * 300 * sim.Microsecond
				p.Delay(arrive)
				if at := p.Now(); at > lastArrival {
					lastArrival = at
				}
				if err := c.Barrier(p); err != nil {
					t.Error(err)
					return
				}
				exits[c.Rank()] = p.Now()
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			for r, exit := range exits {
				if exit < lastArrival {
					t.Errorf("rank %d exited the barrier at %d, before the last arrival %d", r, exit, lastArrival)
				}
			}
		})
	}
}

func TestBarrierRepeated(t *testing.T) {
	// Consecutive barriers must not cross-talk (sequence discipline).
	run(t, cluster.SCRAMNet, 4, true, func(p *sim.Proc, c *mpi.Comm) {
		for i := 0; i < 5; i++ {
			if err := c.Barrier(p); err != nil {
				t.Errorf("barrier %d: %v", i, err)
				return
			}
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	const n = 8
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		send := make([]byte, 8*n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(send[8*i:], math.Float64bits(float64(c.Rank()+i)))
		}
		recv := make([]byte, 8*n)
		if err := c.Allreduce(p, mpi.SumF64, send, recv); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			got := math.Float64frombits(binary.LittleEndian.Uint64(recv[8*i:]))
			want := float64(0+1+2+3) + 4*float64(i)
			if got != want {
				t.Errorf("rank %d elem %d: got %v want %v", c.Rank(), i, got, want)
			}
		}
	})
}

func TestReduceMaxToNonzeroRoot(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		send := make([]byte, 8)
		binary.LittleEndian.PutUint64(send, math.Float64bits(float64(10*c.Rank())))
		recv := make([]byte, 8)
		if err := c.Reduce(p, 2, mpi.MaxF64, send, recv); err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 2 {
			if got := math.Float64frombits(binary.LittleEndian.Uint64(recv)); got != 30 {
				t.Errorf("max = %v, want 30", got)
			}
		}
	})
}

func TestGatherScatterAllgatherAlltoall(t *testing.T) {
	const n = 4
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		size := c.Size()
		me := byte(c.Rank())

		send := bytes.Repeat([]byte{me}, n)
		all := make([]byte, n*size)
		if err := c.Gather(p, 0, send, all); err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			for r := 0; r < size; r++ {
				if all[r*n] != byte(r) {
					t.Errorf("gather slot %d = %d", r, all[r*n])
				}
			}
		}

		recv := make([]byte, n)
		var sendAll []byte
		if c.Rank() == 0 {
			sendAll = make([]byte, n*size)
			for r := 0; r < size; r++ {
				copy(sendAll[r*n:], bytes.Repeat([]byte{byte(100 + r)}, n))
			}
		}
		if err := c.Scatter(p, 0, sendAll, recv); err != nil {
			t.Error(err)
			return
		}
		if recv[0] != byte(100+c.Rank()) {
			t.Errorf("scatter got %d", recv[0])
		}

		ag := make([]byte, n*size)
		if err := c.Allgather(p, send, ag); err != nil {
			t.Error(err)
			return
		}
		for r := 0; r < size; r++ {
			if ag[r*n] != byte(r) {
				t.Errorf("allgather slot %d = %d", r, ag[r*n])
			}
		}

		a2aSend := make([]byte, n*size)
		for r := 0; r < size; r++ {
			copy(a2aSend[r*n:], bytes.Repeat([]byte{byte(16*c.Rank() + r)}, n))
		}
		a2aRecv := make([]byte, n*size)
		if err := c.Alltoall(p, a2aSend, a2aRecv); err != nil {
			t.Error(err)
			return
		}
		for r := 0; r < size; r++ {
			if want := byte(16*r + c.Rank()); a2aRecv[r*n] != want {
				t.Errorf("alltoall slot %d = %d want %d", r, a2aRecv[r*n], want)
			}
		}
	})
}

func TestCommSplitAndCollectivesInSubcomm(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		sub, err := c.Split(p, c.Rank()%2, c.Rank())
		if err != nil {
			t.Error(err)
			return
		}
		if sub.Size() != 2 {
			t.Errorf("sub size = %d", sub.Size())
		}
		// Rank order within the subcomm follows the key (= world rank).
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			t.Errorf("sub rank = %d, want %d", sub.Rank(), wantRank)
		}
		// A broadcast inside the subcomm must not leak across colors.
		buf := []byte{byte(c.Rank() % 2)}
		if err := sub.Bcast(p, 0, buf); err != nil {
			t.Error(err)
			return
		}
		if buf[0] != byte(c.Rank()%2) {
			t.Errorf("subcomm bcast leaked: rank %d got %d", c.Rank(), buf[0])
		}
		// And a barrier in the subcomm completes.
		if err := sub.Barrier(p); err != nil {
			t.Error(err)
		}
	})
}

func TestCommDupIsolatesTraffic(t *testing.T) {
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		dup := c.Dup()
		if c.Rank() == 0 {
			// Same tag on two communicators: receives must match by
			// context, not arrival order.
			if err := c.Send(p, 1, 5, []byte{1}); err != nil {
				t.Error(err)
			}
			if err := dup.Send(p, 1, 5, []byte{2}); err != nil {
				t.Error(err)
			}
		} else {
			p.Delay(1 * sim.Millisecond)
			buf := make([]byte, 1)
			if _, err := dup.Recv(p, 0, 5, buf); err != nil || buf[0] != 2 {
				t.Errorf("dup recv: %v %d", err, buf[0])
			}
			if _, err := c.Recv(p, 0, 5, buf); err != nil || buf[0] != 1 {
				t.Errorf("world recv: %v %d", err, buf[0])
			}
		}
	})
}

func TestMPILatencyCalibration(t *testing.T) {
	// Paper anchors: 0-byte MPI one-way 44 µs, 4-byte 49 µs over
	// SCRAMNet; the MPI layer adds ~constant overhead to the API layer.
	lat := func(n int) float64 {
		k := sim.NewKernel()
		_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, 4, false)
		if err != nil {
			t.Fatal(err)
		}
		var sent, recvd sim.Time
		w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				p.Delay(20 * sim.Microsecond)
				sent = p.Now()
				if err := c.Send(p, 1, 0, make([]byte, n)); err != nil {
					t.Error(err)
				}
			case 1:
				buf := make([]byte, n+1)
				if _, err := c.Recv(p, 0, 0, buf); err != nil {
					t.Error(err)
				}
				recvd = p.Now()
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return recvd.Sub(sent).Microseconds()
	}
	l0, l4 := lat(0), lat(4)
	if l0 < 30 || l0 > 60 {
		t.Errorf("MPI 0-byte one-way %.1f µs, paper anchor 44 µs", l0)
	}
	if l4 <= l0 || l4 > 70 {
		t.Errorf("MPI 4-byte one-way %.1f µs (0-byte %.1f), paper anchor 49 µs", l4, l0)
	}
}

func TestPropertyRandomTrafficDeliveredExactlyOnce(t *testing.T) {
	// Property: random pairwise traffic with mixed tags and sizes is
	// delivered exactly once, in per-(src,tag) order, bit-exact.
	f := func(seed uint64) bool {
		const nodes = 3
		k := sim.NewKernel()
		_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, nodes, false)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		counts := [nodes][nodes]int{}
		for s := range counts {
			for r := range counts[s] {
				if s != r {
					counts[s][r] = rng.Intn(6)
				}
			}
		}
		payload := func(s, r, i int) []byte {
			n := int(sim.NewRNG(uint64(s*100+r*10+i)).Uint64()%300) + 1
			b := make([]byte, n)
			sim.NewRNG(uint64(s)<<32 | uint64(r)<<16 | uint64(i)).Bytes(b)
			return b
		}
		ok := true
		w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
			me := c.Rank()
			// Send phase (interleaved with receive by staggering).
			for i := 0; i < 6; i++ {
				for r := 0; r < nodes; r++ {
					if r == me || i >= counts[me][r] {
						continue
					}
					if err := c.Send(p, r, i, payload(me, r, i)); err != nil {
						ok = false
						return
					}
				}
			}
			for s := 0; s < nodes; s++ {
				for i := 0; i < counts[s][me]; i++ {
					want := payload(s, me, i)
					buf := make([]byte, len(want))
					st, err := c.Recv(p, s, i, buf)
					if err != nil || st.Len != len(want) || !bytes.Equal(buf, want) {
						ok = false
						return
					}
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestBadArguments(t *testing.T) {
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() != 0 {
			return
		}
		if err := c.Send(p, 5, 0, nil); err != mpi.ErrBadRank {
			t.Errorf("bad rank err = %v", err)
		}
		if err := c.Send(p, 1, -3, nil); err != mpi.ErrBadTag {
			t.Errorf("bad tag err = %v", err)
		}
		if _, err := c.Irecv(p, 9, 0, nil); err != mpi.ErrBadRank {
			t.Errorf("bad src err = %v", err)
		}
	})
}

func TestManyRanksTree(t *testing.T) {
	// Collectives on a larger ring exercise deeper binomial trees.
	const nodes = 7
	run(t, cluster.SCRAMNet, nodes, false, func(p *sim.Proc, c *mpi.Comm) {
		buf := []byte{0}
		if c.Rank() == 3 {
			buf[0] = 42
		}
		if err := c.Bcast(p, 3, buf); err != nil || buf[0] != 42 {
			t.Errorf("rank %d: %v %d", c.Rank(), err, buf[0])
		}
		if err := c.Barrier(p); err != nil {
			t.Error(err)
		}
	})
}

func ExampleComm_Send() {
	k := sim.NewKernel()
	_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, 2, false)
	if err != nil {
		panic(err)
	}
	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Send(p, 1, 0, []byte("hello"))
		} else {
			buf := make([]byte, 8)
			st, _ := c.Recv(p, 0, 0, buf)
			fmt.Printf("rank 1 got %q\n", buf[:st.Len])
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	// Output: rank 1 got "hello"
}
