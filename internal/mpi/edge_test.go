package mpi_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestWaitanyReturnsFirstCompletion(t *testing.T) {
	run(t, cluster.SCRAMNet, 3, false, func(p *sim.Proc, c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			buf1 := make([]byte, 8)
			buf2 := make([]byte, 8)
			r1, err := c.Irecv(p, 1, 0, buf1)
			if err != nil {
				t.Error(err)
				return
			}
			r2, err := c.Irecv(p, 2, 0, buf2)
			if err != nil {
				t.Error(err)
				return
			}
			// Rank 2 sends much earlier: its request must win.
			idx, st, err := c.Waitany(p, []*mpi.Request{r1, r2})
			if err != nil || idx != 1 || st.Source != 2 {
				t.Errorf("Waitany = (%d, %+v, %v), want index 1 from rank 2", idx, st, err)
			}
			if _, err := c.Wait(p, r1); err != nil {
				t.Error(err)
			}
		case 1:
			p.Delay(3 * sim.Millisecond)
			if err := c.Send(p, 0, 0, []byte{1}); err != nil {
				t.Error(err)
			}
		case 2:
			p.Delay(100 * sim.Microsecond)
			if err := c.Send(p, 0, 0, []byte{2}); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestProbeBlocksUntilMessage(t *testing.T) {
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			p.Delay(500 * sim.Microsecond)
			if err := c.Send(p, 1, 8, []byte{1, 2, 3, 4, 5}); err != nil {
				t.Error(err)
			}
		} else {
			st, err := c.Probe(p, 0, 8)
			if err != nil || st.Len != 5 || st.Source != 0 {
				t.Errorf("Probe = %+v, %v", st, err)
				return
			}
			// Size the buffer from the probe, as MPI programs do.
			buf := make([]byte, st.Len)
			if _, err := c.Recv(p, 0, 8, buf); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestManySmallIsendsDrainInOrder(t *testing.T) {
	// A burst of nonblocking sends larger than the BBP slot count
	// forces sender-side GC inside the MPI stack.
	const count = 60
	run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			var reqs []*mpi.Request
			for i := 0; i < count; i++ {
				r, err := c.Isend(p, 1, 0, []byte{byte(i)})
				if err != nil {
					t.Error(err)
					return
				}
				reqs = append(reqs, r)
			}
			if err := c.Waitall(p, reqs); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 4)
			for i := 0; i < count; i++ {
				if _, err := c.Recv(p, 0, 0, buf); err != nil || buf[0] != byte(i) {
					t.Errorf("recv %d: got %d err=%v", i, buf[0], err)
					return
				}
			}
		}
	})
}

func TestWaitTimeoutOnMissingMessage(t *testing.T) {
	k := sim.NewKernel()
	c, err := cluster.New(k, cluster.Options{Nodes: 2, Net: cluster.SCRAMNet, PIOOnlyBBP: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpi.DefaultConfig()
	cfg.WaitTimeout = 2 * sim.Millisecond
	w := mpi.NewWorld(c.Endpoints, cfg)
	var recvErr error
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		if cm.Rank() == 1 {
			_, recvErr = cm.Recv(p, 0, 0, make([]byte, 8))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvErr != mpi.ErrTimeout {
		t.Fatalf("recvErr = %v, want ErrTimeout", recvErr)
	}
}

func TestCollectivesOnAllTransports(t *testing.T) {
	// The same collective code must work over every substrate,
	// including the hybrid extension.
	for _, net := range cluster.AllNetworks {
		net := net
		t.Run(string(net), func(t *testing.T) {
			run(t, net, 4, net == cluster.SCRAMNet || net == cluster.Hybrid,
				func(p *sim.Proc, c *mpi.Comm) {
					buf := make([]byte, 64)
					if c.Rank() == 2 {
						for i := range buf {
							buf[i] = byte(i ^ 0x5a)
						}
					}
					if err := c.Bcast(p, 2, buf); err != nil {
						t.Error(err)
						return
					}
					for i := range buf {
						if buf[i] != byte(i^0x5a) {
							t.Errorf("rank %d corrupt at %d", c.Rank(), i)
							return
						}
					}
					if err := c.Barrier(p); err != nil {
						t.Error(err)
					}
				})
		})
	}
}

func TestRendezvousBidirectionalExchange(t *testing.T) {
	// Symmetric large-message Sendrecv: both sides in rendezvous at
	// once — the pattern that deadlocks naive blocking protocols.
	const size = 64 << 10
	run(t, cluster.FastEthernet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		peer := 1 - c.Rank()
		out := bytes.Repeat([]byte{byte(c.Rank() + 1)}, size)
		in := make([]byte, size)
		st, err := c.Sendrecv(p, peer, 0, out, peer, 0, in)
		if err != nil || st.Len != size {
			t.Errorf("rank %d: %+v %v", c.Rank(), st, err)
			return
		}
		if in[0] != byte(peer+1) || in[size-1] != byte(peer+1) {
			t.Errorf("rank %d got wrong payload", c.Rank())
		}
	})
}

func TestStressAllToAllOnSCRAMNet(t *testing.T) {
	// Sustained all-pairs traffic through the BBP-backed MPI: every
	// rank exchanges with every other rank repeatedly.
	const rounds = 8
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		size := c.Size()
		n := 32
		for r := 0; r < rounds; r++ {
			send := make([]byte, n*size)
			for d := 0; d < size; d++ {
				for j := 0; j < n; j++ {
					send[d*n+j] = byte(c.Rank()*16 + d + r)
				}
			}
			recv := make([]byte, n*size)
			if err := c.Alltoall(p, send, recv); err != nil {
				t.Errorf("round %d: %v", r, err)
				return
			}
			for s := 0; s < size; s++ {
				if recv[s*n] != byte(s*16+c.Rank()+r) {
					t.Errorf("round %d slot %d: %d", r, s, recv[s*n])
					return
				}
			}
		}
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		color := c.Rank() % 2
		if c.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := c.Split(p, color, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color returned a communicator")
			}
			return
		}
		want := 2
		if color == 1 {
			want = 1 // only rank 1 has color 1 (rank 3 dropped out)
		}
		if sub.Size() != want {
			t.Errorf("rank %d: sub size %d want %d", c.Rank(), sub.Size(), want)
		}
	})
}

func TestLargeWorld(t *testing.T) {
	// 16 ranks on one ring: deeper trees, more polling, longer ring.
	const nodes = 16
	run(t, cluster.SCRAMNet, nodes, true, func(p *sim.Proc, c *mpi.Comm) {
		// Ring pass: each rank forwards a counter.
		buf := make([]byte, 4)
		if c.Rank() == 0 {
			buf[0] = 1
			if err := c.Send(p, 1, 0, buf); err != nil {
				t.Error(err)
				return
			}
			if _, err := c.Recv(p, nodes-1, 0, buf); err != nil {
				t.Error(err)
				return
			}
			if int(buf[0]) != nodes {
				t.Errorf("counter = %d, want %d", buf[0], nodes)
			}
		} else {
			if _, err := c.Recv(p, c.Rank()-1, 0, buf); err != nil {
				t.Error(err)
				return
			}
			buf[0]++
			if err := c.Send(p, (c.Rank()+1)%nodes, 0, buf); err != nil {
				t.Error(err)
				return
			}
		}
		if err := c.Barrier(p); err != nil {
			t.Error(err)
		}
	})
}

func TestStatusSourceIsCommRankAfterSplit(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		sub, err := c.Split(p, c.Rank()%2, c.Rank())
		if err != nil {
			t.Error(err)
			return
		}
		// In each subcomm, sub-rank 1 (world rank 2 or 3) sends to
		// sub-rank 0; the status source must be the SUBCOMM rank.
		if sub.Rank() == 1 {
			if err := sub.Send(p, 0, 0, []byte{7}); err != nil {
				t.Error(err)
			}
		} else {
			st, err := sub.Recv(p, mpi.AnySource, 0, make([]byte, 4))
			if err != nil || st.Source != 1 {
				t.Errorf("world rank %d: status source %d want 1 (err %v)", c.Rank(), st.Source, err)
			}
		}
	})
}

func TestManySimultaneousWorlds(t *testing.T) {
	// Independent MPI worlds on independent rings in one simulation:
	// kernels are not global state.
	k := sim.NewKernel()
	for wi := 0; wi < 3; wi++ {
		_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		wi := wi
		w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
			if c.Rank() == 0 {
				if err := c.Send(p, 1, wi, []byte{byte(wi)}); err != nil {
					t.Error(err)
				}
			} else {
				buf := make([]byte, 4)
				st, err := c.Recv(p, 0, wi, buf)
				if err != nil || st.Tag != wi || buf[0] != byte(wi) {
					t.Errorf("world %d: %+v %v", wi, st, err)
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStatsAccounting(t *testing.T) {
	w := run(t, cluster.SCRAMNet, 2, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if err := c.Send(p, 1, 0, []byte{byte(i)}); err != nil {
					t.Error(err)
				}
			}
			if err := c.Send(p, 1, 0, make([]byte, 100<<10)); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 100<<10)
			for i := 0; i < 4; i++ {
				if _, err := c.Recv(p, 0, 0, buf); err != nil {
					t.Error(err)
				}
			}
		}
	})
	s0, s1 := w.Engine(0).Stats(), w.Engine(1).Stats()
	if s0.EagerSent != 3 || s0.RndvSent != 1 {
		t.Errorf("sender stats: %+v", s0)
	}
	if s1.Received != 4 {
		t.Errorf("receiver stats: %+v", s1)
	}
	// The rendezvous above ran sequentially: the windowed instruments
	// must all be untouched.
	if s0.RndvZeroCopy != 0 || s0.WindowStalls != 0 {
		t.Errorf("sequential run touched windowed stats: %+v", s0)
	}
	_ = fmt.Sprintf("%+v", s0) // stats are printable

	// Windowed run with a metrics registry installed: every EngineStats
	// field must mirror its mpi.* counter identically, and the pipeline
	// depth gauge's high-water mark must respect the configured bound.
	const depth = 1 // deterministic: every chunk after the first waits
	k := sim.NewKernel()
	c2, err := cluster.New(k, cluster.Options{Nodes: 2, Net: cluster.SCRAMNet, PIOOnlyBBP: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpi.DefaultConfig()
	cfg.ChunkSize = 4 << 10
	cfg.RndvZeroCopy = true
	cfg.RndvPipelineDepth = depth
	w2 := mpi.NewWorld(c2.Endpoints, cfg)
	reg := metrics.New()
	w2.SetMetrics(reg)
	w2.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		if cm.Rank() == 0 {
			if err := cm.Send(p, 1, 0, make([]byte, 64<<10)); err != nil {
				t.Error(err)
			}
		} else if _, err := cm.Recv(p, 0, 0, make([]byte, 64<<10)); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		s := w2.Engine(r).Stats()
		for _, pair := range []struct {
			name string
			stat int64
		}{
			{"mpi.eager_sent", s.EagerSent},
			{"mpi.rndv_sent", s.RndvSent},
			{"mpi.received", s.Received},
			{"mpi.unexpected_msgs", s.UnexpectedMsgs},
			{"mpi.chunks_sent", s.ChunksSent},
			{"mpi.rndv_zero_copy", s.RndvZeroCopy},
			{"mpi.window_stalls", s.WindowStalls},
		} {
			if got := reg.Counter(pair.name, r).Value(); got != pair.stat {
				t.Errorf("rank %d %s = %d, stats say %d", r, pair.name, got, pair.stat)
			}
		}
	}
	ws := w2.Engine(0).Stats()
	if ws.RndvZeroCopy != 1 || ws.ChunksSent != 16 {
		t.Errorf("windowed sender stats: %+v, want 1 zero-copy transfer of 16 chunks", ws)
	}
	if ws.WindowStalls == 0 {
		t.Errorf("depth-1 pipeline over a slow ring never stalled: %+v", ws)
	}
	if hw := reg.Gauge("mpi.pipeline_depth", 0).Max(); hw < 1 || hw > depth {
		t.Errorf("pipeline depth high-water %d outside [1, %d]", hw, depth)
	}
}
