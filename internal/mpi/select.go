package mpi

// This file is the collective selection layer (DESIGN.md §15): one
// entry point per collective — Barrier, Bcast, Allreduce — with the
// algorithm chosen per call from an options list. Auto (the default)
// selects from the membership view, the transport's capabilities, the
// rank count, and the message size; the variant-suffixed methods the
// package used to export (BarrierMcast, BcastTree, AllreduceW, ...)
// survive only as thin deprecated wrappers over WithAlgorithm.
//
// Two mechanisms live here besides dispatch:
//
//   - The NIC-combined paths: Barrier expressed as one spin.Reducer
//     round over a single all-ones BAND lane, and Allreduce over the
//     same streaming pass, so gather state accumulates inside the
//     SCRAMNet cards at each ring transit (the combining counter,
//     PROTOCOL.md) instead of in rank-side poll trees.
//
//   - The membership-aware re-plan: on a transport with a failure
//     detector, the tree release phase of Bcast/Barrier is re-planned
//     around *suspected* members — the root fences the collective with
//     a plan record (epoch + suspect mask) broadcast over the fixed
//     tree, then the payload flows over a tree in which suspects hang
//     off the root as leaves and forward to nobody. A falsely
//     suspected member still receives and the result matches the
//     all-alive run; a genuinely dead member surfaces as a
//     DeadPeerError bounded by the detector's confirmation window,
//     without having stalled any healthy member's subtree.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"

	"repro/internal/liveness"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/trace"
)

// Algorithm selects a collective implementation.
type Algorithm int

// The selectable algorithms. Not every algorithm applies to every
// collective — see the policy table in DESIGN.md §15; an inapplicable
// explicit choice returns ErrBadAlgorithm, while Auto always resolves
// to an applicable one.
const (
	// Auto picks from the membership view, transport capabilities,
	// rank count, and message size.
	Auto Algorithm = iota
	// Mcast uses the transport's single-step native multicast
	// (the paper's §4 implementation).
	Mcast
	// Tree uses the stock binomial tree over point-to-point messages
	// (with the membership-aware release re-plan when a failure
	// detector runs).
	Tree
	// Dissemination uses the root-free pairwise-exchange family: the
	// dissemination barrier, or recursive-doubling allreduce.
	Dissemination
	// NICCombined combines gather state inside the NICs at ring
	// transit points (spin.Reducer): the streaming allreduce, or the
	// barrier as a 1-lane BAND round.
	NICCombined
)

func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Mcast:
		return "mcast"
	case Tree:
		return "tree"
	case Dissemination:
		return "dissemination"
	case NICCombined:
		return "nic-combined"
	}
	return fmt.Sprintf("mpi.Algorithm(%d)", int(a))
}

// ErrBadAlgorithm reports an explicit WithAlgorithm choice that does
// not apply to the collective it was passed to.
var ErrBadAlgorithm = errors.New("mpi: algorithm not applicable to this collective")

// CollectiveOpts carries per-call collective options.
type CollectiveOpts struct {
	Algorithm Algorithm
}

// CollectiveOption mutates CollectiveOpts.
type CollectiveOption func(*CollectiveOpts)

// WithAlgorithm pins the collective to one implementation instead of
// the Auto policy.
func WithAlgorithm(a Algorithm) CollectiveOption {
	return func(o *CollectiveOpts) { o.Algorithm = a }
}

func collectiveOpts(opts []CollectiveOption) CollectiveOpts {
	var o CollectiveOpts
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// The streamable 32-bit-lane operators as mpi.Op values. These are the
// ops Auto can offload to the NIC combining pass: they are named
// top-level functions so the selection layer can recognize them by
// code pointer and map them to the ring operator — callers never name
// a ring operator (or import internal/spin) themselves.
func foldU32(op spin.RingOp, acc, in []byte) {
	for i := 0; i+4 <= len(acc) && i+4 <= len(in); i += 4 {
		v := op.Combine(binary.LittleEndian.Uint32(acc[i:]), binary.LittleEndian.Uint32(in[i:]))
		binary.LittleEndian.PutUint32(acc[i:], v)
	}
}

// SumU32 adds little-endian uint32 lanes.
func SumU32(acc, in []byte) { foldU32(spin.OpSumU32, acc, in) }

// MaxU32 takes the elementwise maximum of uint32 lanes.
func MaxU32(acc, in []byte) { foldU32(spin.OpMaxU32, acc, in) }

// MinU32 takes the elementwise minimum of uint32 lanes.
func MinU32(acc, in []byte) { foldU32(spin.OpMinU32, acc, in) }

// BorU32 ORs uint32 lanes.
func BorU32(acc, in []byte) { foldU32(spin.OpBOR, acc, in) }

// BandU32 ANDs uint32 lanes.
func BandU32(acc, in []byte) { foldU32(spin.OpBAND, acc, in) }

// BxorU32 XORs uint32 lanes.
func BxorU32(acc, in []byte) { foldU32(spin.OpBXOR, acc, in) }

// ringOpTable maps the code pointers of the named u32 ops to their
// ring operators. Named top-level functions have distinct code
// pointers; closures (which can share one) are never registered, so a
// user-supplied Op can only ever miss the table and run host-side.
var ringOpTable = map[uintptr]spin.RingOp{}

func regRingOp(fn Op, op spin.RingOp) {
	ringOpTable[reflect.ValueOf(fn).Pointer()] = op
}

func init() {
	regRingOp(SumU32, spin.OpSumU32)
	regRingOp(MaxU32, spin.OpMaxU32)
	regRingOp(MinU32, spin.OpMinU32)
	regRingOp(BorU32, spin.OpBOR)
	regRingOp(BandU32, spin.OpBAND)
	regRingOp(BxorU32, spin.OpBXOR)
}

// ringOpOf resolves an Op to its streamable ring operator, OpNone when
// the op is not one of the named u32 ops.
func ringOpOf(op Op) spin.RingOp {
	if op == nil {
		return spin.OpNone
	}
	return ringOpTable[reflect.ValueOf(op).Pointer()]
}

// opOfRing is the inverse: the named host-side Op computing exactly
// what the ring operator computes, nil for an invalid operator.
func opOfRing(r spin.RingOp) Op {
	switch r {
	case spin.OpSumU32:
		return SumU32
	case spin.OpMaxU32:
		return MaxU32
	case spin.OpMinU32:
		return MinU32
	case spin.OpBOR:
		return BorU32
	case spin.OpBAND:
		return BandU32
	case spin.OpBXOR:
		return BxorU32
	}
	return nil
}

// nicEligible reports whether the NIC combining substrate is usable
// for this communicator at all: an in-network transport, and the world
// communicator (the stream region is laid out for world ranks).
func (c *Comm) nicEligible() bool {
	return c.eng.stream != nil && c.ctx == 1
}

// chooseHostBarrier is the host-side half of the barrier policy:
// native multicast coordination when configured, else the tree.
func (c *Comm) chooseHostBarrier() Algorithm {
	if c.eng.cfg.McastCollectives && c.eng.ep.NativeMcast() {
		return Mcast
	}
	return Tree
}

// Barrier blocks until every member arrives. Auto prefers the
// NIC-combined round (gather state accumulated in the cards, one
// counter poll at rank 0), degrading to the host mcast/tree path when
// the stream substrate is absent, the membership view is not
// all-alive, or a packet was lost mid-round — the degradation verdict
// is rank-uniform, so every member falls back together.
func (c *Comm) Barrier(p *sim.Proc, opts ...CollectiveOption) error {
	e := c.eng
	if part, ok := e.partition(); ok {
		if part.Minority {
			return e.partitionErr(part)
		}
		if subs := c.quorumRanks(part); len(subs) < c.Size() {
			span := e.tracer.BeginSpan(p.Now(), trace.MPI, e.ep.Rank(), "barrier", 0, e.tracer.Parent(), "algo=quorum size=%d of %d", len(subs), c.Size())
			e.tracer.PushParent(span)
			err := c.barrierQuorum(p, part, subs)
			e.tracer.PopParent()
			e.tracer.EndSpan(p.Now(), trace.MPI, e.ep.Rank(), "barrier-end", span, 0, "err=%v", err)
			return err
		}
	}
	o := collectiveOpts(opts)
	algo := o.Algorithm
	if algo == Auto {
		if c.nicEligible() {
			algo = NICCombined
		} else {
			algo = c.chooseHostBarrier()
		}
	}
	span := e.tracer.BeginSpan(p.Now(), trace.MPI, e.ep.Rank(), "barrier", 0, e.tracer.Parent(), "algo=%v size=%d", algo, c.Size())
	e.tracer.PushParent(span)
	err := c.runBarrier(p, algo)
	e.tracer.PopParent()
	e.tracer.EndSpan(p.Now(), trace.MPI, e.ep.Rank(), "barrier-end", span, 0, "err=%v", err)
	return err
}

func (c *Comm) runBarrier(p *sim.Proc, algo Algorithm) error {
	switch algo {
	case NICCombined:
		return c.barrierNIC(p)
	case Mcast:
		return c.barrierMcast(p)
	case Tree:
		return c.barrierTree(p)
	case Dissemination:
		return c.barrierDissemination(p)
	}
	return fmt.Errorf("%w: %v barrier", ErrBadAlgorithm, algo)
}

// barrierNIC expresses the barrier as one spin.Reducer round over a
// single all-ones BAND lane: every rank's "I arrived" is its staged
// contribution, each transit ANDs the lane and bumps the combining
// counter inside the card, and rank 0's one counter poll replaces the
// rank-side gather tree. The transport declines collectively (same
// verdict every rank) when the all-alive gate fails or a packet was
// lost, and the barrier degrades to the host path.
func (c *Comm) barrierNIC(p *sim.Proc) error {
	e := c.eng
	if !c.nicEligible() {
		return c.runBarrier(p, c.chooseHostBarrier())
	}
	var one, out [4]byte
	binary.LittleEndian.PutUint32(one[:], ^uint32(0))
	p.Delay(e.cfg.Costs.CollOverhead)
	done, err := e.stream.StreamAllreduce(p, spin.OpBAND, one[:], out[:])
	if err != nil {
		return err
	}
	if done {
		e.stats.NICBarriers++
		e.im.nicBarriers.Inc()
		return nil
	}
	e.stats.StreamFallbacks++
	e.im.streamFalls.Inc()
	return c.runBarrier(p, c.chooseHostBarrier())
}

// Bcast broadcasts buf (same length on all ranks) from root. Auto uses
// the transport's single-step native multicast when configured, else
// the binomial tree (re-planned around suspected members when a
// failure detector runs).
func (c *Comm) Bcast(p *sim.Proc, root int, buf []byte, opts ...CollectiveOption) error {
	e := c.eng
	if part, ok := e.partition(); ok {
		if part.Minority {
			return e.partitionErr(part)
		}
		if subs := c.quorumRanks(part); len(subs) < c.Size() {
			if err := c.checkRank(root); err != nil {
				return err
			}
			if part.Unreachable(c.group[root]) {
				// The payload source itself is behind the cut: no quorum
				// re-plan can produce it.
				return e.partitionErr(part)
			}
			c.notePartitionPlan(p, part, subs, c.rank == root)
			return c.bcastSub(p, subs, subIndex(subs, root), tagBcast, buf)
		}
	}
	o := collectiveOpts(opts)
	algo := o.Algorithm
	if algo == Auto {
		if c.eng.cfg.McastCollectives && c.eng.ep.NativeMcast() {
			algo = Mcast
		} else {
			algo = Tree
		}
	}
	switch algo {
	case Mcast:
		return c.bcastMcast(p, root, buf)
	case Tree:
		return c.bcastTree(p, root, buf)
	}
	return fmt.Errorf("%w: %v bcast", ErrBadAlgorithm, algo)
}

// Allreduce combines sendBuf from every rank with op (assumed
// commutative and associative) into every rank's recvBuf. Auto
// offloads to the NIC combining pass when the op is one of the named
// u32 operators (SumU32, ..., BxorU32), the vector fits the stream
// region, and the substrate is present; everything else runs the
// Reduce+Bcast tree. Dissemination selects recursive doubling.
func (c *Comm) Allreduce(p *sim.Proc, op Op, sendBuf, recvBuf []byte, opts ...CollectiveOption) error {
	e := c.eng
	if part, ok := e.partition(); ok {
		if part.Minority {
			return e.partitionErr(part)
		}
		if subs := c.quorumRanks(part); len(subs) < c.Size() {
			return c.allreduceQuorum(p, part, subs, op, sendBuf, recvBuf)
		}
	}
	o := collectiveOpts(opts)
	algo := o.Algorithm
	if algo == Auto {
		if c.nicReduceEligible(op, sendBuf, recvBuf) {
			algo = NICCombined
		} else {
			algo = Tree
		}
	}
	switch algo {
	case NICCombined:
		return c.allreduceNIC(p, op, sendBuf, recvBuf)
	case Tree:
		return c.allreduceTree(p, op, sendBuf, recvBuf)
	case Dissemination:
		return c.allreduceRD(p, op, sendBuf, recvBuf)
	}
	return fmt.Errorf("%w: %v allreduce", ErrBadAlgorithm, algo)
}

// nicReduceEligible reports whether this allreduce call can try the
// in-network pass. For a well-formed collective call — every rank
// passing the same op and equally sized buffers — every predicate is
// rank-uniform except the recvBuf length, which a buggy caller can
// break per-rank; that rank then declines alone, rank 0's arrival wait
// expires, and the whole collective degrades to the tree together (see
// core.StreamAllreduce).
func (c *Comm) nicReduceEligible(op Op, sendBuf, recvBuf []byte) bool {
	n := len(sendBuf)
	return c.nicEligible() && ringOpOf(op).Valid() &&
		n > 0 && n%4 == 0 && n <= c.eng.stream.StreamMax() && len(recvBuf) >= n
}

// allreduceNIC runs the streaming in-network reduction, degrading to
// the tree when the transport declines (suspicion, loss, or timeout —
// same verdict on every rank for the same round).
func (c *Comm) allreduceNIC(p *sim.Proc, op Op, sendBuf, recvBuf []byte) error {
	if !c.nicReduceEligible(op, sendBuf, recvBuf) {
		return c.allreduceTree(p, op, sendBuf, recvBuf)
	}
	e := c.eng
	ring := ringOpOf(op)
	n := len(sendBuf)
	p.Delay(e.cfg.Costs.CollOverhead)
	span := e.tracer.BeginSpan(p.Now(), trace.MPI, e.ep.Rank(), "allreduce-stream", 0, e.tracer.Parent(), "op=%v len=%d", ring, n)
	e.tracer.PushParent(span)
	done, err := e.stream.StreamAllreduce(p, ring, sendBuf, recvBuf[:n])
	e.tracer.PopParent()
	e.tracer.EndSpan(p.Now(), trace.MPI, e.ep.Rank(), "allreduce-stream-end", span, 0, "done=%v err=%v", done, err)
	if err != nil {
		return err
	}
	if done {
		e.stats.StreamAllreduces++
		e.im.streamAllred.Inc()
		return nil
	}
	e.stats.StreamFallbacks++
	e.im.streamFalls.Inc()
	return c.allreduceTree(p, op, sendBuf, recvBuf)
}

// allreduceTree is Reduce to rank 0 followed by the host broadcast
// (native multicast when configured, else the tree).
func (c *Comm) allreduceTree(p *sim.Proc, op Op, sendBuf, recvBuf []byte) error {
	if err := c.Reduce(p, 0, op, sendBuf, recvBuf); err != nil {
		return err
	}
	if c.eng.cfg.McastCollectives && c.eng.ep.NativeMcast() {
		return c.bcastMcast(p, 0, recvBuf)
	}
	return c.bcastTree(p, 0, recvBuf)
}

// --- Membership-aware tree re-plan -----------------------------------
//
// A planned release tree (bcastTree and the barrier release) demotes
// every member the root's failure detector holds in Suspect or Dead to
// a leaf hanging directly off the root: suspects forward to nobody, so
// a member that is about to be confirmed dead cannot stall a healthy
// subtree behind it. The plan is decided by the root alone and fenced
// in-band — a plan record (epoch + suspect mask) rides the fixed-shape
// tree ahead of the payload — so divergent per-rank membership views
// cannot split the collective: every member routes by the carried
// plan, not by its own view. The epoch increments each time the root's
// suspect set changes (Engine.Stats().CollReplans, mpi.coll_replans),
// marking re-plan generations in traces.

// suspectMask returns the comm-rank bitmask of members this rank's
// membership view holds in a non-Alive state (empty without a
// detector).
func (c *Comm) suspectMask() []byte {
	mask := make([]byte, (c.Size()+7)/8)
	e := c.eng
	if e.live == nil {
		return mask
	}
	self := e.ep.Rank()
	for r, w := range c.group {
		if w != self && e.live.State(w) != liveness.Alive {
			mask[r/8] |= 1 << (r % 8)
		}
	}
	return mask
}

func maskBit(mask []byte, r int) bool { return mask[r/8]&(1<<(r%8)) != 0 }

func maskEmpty(mask []byte) bool {
	for _, b := range mask {
		if b != 0 {
			return false
		}
	}
	return true
}

// planOrder lays out the release tree: root at position 0, healthy
// members in rank order, suspected members last. Positions [0, h) form
// the binomial tree (h = healthy count); positions [h, size) hang off
// the root as direct leaves.
func planOrder(size, root int, mask []byte) (order []int, healthy int) {
	order = make([]int, 0, size)
	order = append(order, root)
	for r := 0; r < size; r++ {
		if r != root && !maskBit(mask, r) {
			order = append(order, r)
		}
	}
	healthy = len(order)
	for r := 0; r < size; r++ {
		if r != root && maskBit(mask, r) {
			order = append(order, r)
		}
	}
	return order, healthy
}

// bcastTree is the tree broadcast: the stock binomial shape without a
// failure detector, the fenced re-planned shape with one.
func (c *Comm) bcastTree(p *sim.Proc, root int, buf []byte) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if c.eng.live == nil || c.Size() == 1 {
		return c.bcastFixed(p, root, tagBcast, buf)
	}
	mask, err := c.fencePlan(p, root)
	if err != nil {
		return err
	}
	return c.bcastPlanned(p, root, mask, buf)
}

// fencePlan is the re-plan fence: the root reads its membership view,
// bumps the plan epoch if the suspect set changed, and broadcasts the
// plan record over the fixed-shape tree so every member holds the same
// plan before any payload moves. Returns the suspect mask to route by.
func (c *Comm) fencePlan(p *sim.Proc, root int) ([]byte, error) {
	e := c.eng
	nb := (c.Size() + 7) / 8
	rec := make([]byte, 4+nb)
	if c.rank == root {
		mask := c.suspectMask()
		if !bytesEq(mask, c.lastPlanMask) {
			c.planEpoch++
			c.lastPlanMask = append([]byte(nil), mask...)
			if !maskEmpty(mask) {
				e.stats.CollReplans++
				e.im.collReplans.Inc()
				e.tracer.Emitf(p.Now(), trace.MPI, e.ep.Rank(), "coll-replan", "epoch=%d mask=%x", c.planEpoch, mask)
			}
		}
		binary.LittleEndian.PutUint32(rec, c.planEpoch)
		copy(rec[4:], mask)
	}
	if err := c.bcastFixed(p, root, tagPlan, rec); err != nil {
		return nil, err
	}
	mask := rec[4:]
	// The root can never be its own suspect; clear defensively so the
	// order math cannot double-place it.
	mask[root/8] &^= 1 << (root % 8)
	if c.rank != root {
		c.planEpoch = binary.LittleEndian.Uint32(rec)
	}
	return mask, nil
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bcastFixed is the stock MPICH binomial-tree broadcast over
// point-to-point, parameterized by tag so the plan fence and the
// payload share one shape.
func (c *Comm) bcastFixed(p *sim.Proc, root, tag int, buf []byte) error {
	size := c.Size()
	relrank := (c.rank - root + size) % size
	mask := 1
	for mask < size {
		if relrank&mask != 0 {
			src := c.rank - mask
			if src < 0 {
				src += size
			}
			if _, err := c.Recv(p, src, tag, buf); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relrank+mask < size {
			dst := c.rank + mask
			if dst >= size {
				dst -= size
			}
			if err := c.Send(p, dst, tag, buf); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// bcastPlanned routes the payload over the re-planned tree: binomial
// over the healthy positions, suspects fed directly by the root.
func (c *Comm) bcastPlanned(p *sim.Proc, root int, suspects, buf []byte) error {
	order, h := planOrder(c.Size(), root, suspects)
	pos := -1
	for q, r := range order {
		if r == c.rank {
			pos = q
			break
		}
	}
	if pos >= h {
		// A suspect (by the root's view — possibly falsely): receive
		// straight from the root, forward nothing.
		_, err := c.Recv(p, root, tagBcast, buf)
		return err
	}
	mask := 1
	for mask < h {
		if pos&mask != 0 {
			if _, err := c.Recv(p, order[pos-mask], tagBcast, buf); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if pos+mask < h {
			if err := c.Send(p, order[pos+mask], tagBcast, buf); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	if pos == 0 {
		// The root feeds each demoted member last: their payload never
		// gates a healthy subtree, and a confirmed-dead member surfaces
		// here (or at its own liveness-aware receive) as DeadPeerError.
		for q := h; q < len(order); q++ {
			if err := c.Send(p, order[q], tagBcast, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// barrierTree is the point-to-point barrier: binomial gather of
// arrival tokens to rank 0 (fixed shape — arrivals flow toward the
// root regardless of suspicion, since only the root owns the re-plan
// decision), then the release over the planned tree.
func (c *Comm) barrierTree(p *sim.Proc) error {
	size := c.Size()
	relrank := c.rank // root is always 0
	mask := 1
	for mask < size {
		if relrank&mask != 0 {
			parent := c.rank - mask
			if err := c.Send(p, parent, tagBarrier, nil); err != nil {
				return err
			}
			break
		}
		if relrank+mask < size {
			child := c.rank + mask
			if _, err := c.Recv(p, child, tagBarrier, nil); err != nil {
				return err
			}
		}
		mask <<= 1
	}
	return c.bcastTree(p, 0, nil)
}

// --- Quorum collectives under a declared partition -------------------
//
// When the transport declares a ring partition, majority-side
// collectives re-plan over the quorum: the subgroup of communicator
// members whose world rank is reachable. Unlike the suspect re-plan
// above, no fence record is broadcast — the plan is derived by every
// member independently from its own declared partition, which is safe
// because the declaration itself is deterministic (hardware cut count
// plus a contiguous stable suspect arc, converging on the shared
// heartbeat tick). The minority side never reaches these paths: its
// members get a PartitionError at the entry gate. Epoch bookkeeping
// still runs (notePartitionPlan) so re-plan generations stay visible in
// traces and the post-heal fencePlan sees the mask change.

// quorumRanks returns the comm ranks on this side of the partition, in
// rank order. The calling rank is always included (it is, by
// construction, on the near side).
func (c *Comm) quorumRanks(part liveness.PartitionInfo) []int {
	subs := make([]int, 0, c.Size())
	for r, w := range c.group {
		if !part.Unreachable(w) {
			subs = append(subs, r)
		}
	}
	return subs
}

// subIndex returns r's position in subs, -1 when absent.
func subIndex(subs []int, r int) int {
	for i, s := range subs {
		if s == r {
			return i
		}
	}
	return -1
}

// partMask renders the partition's unreachable members as a comm-rank
// bitmask, the same shape fencePlan uses for suspects, so plan
// generations from both machineries compare with bytesEq.
func (c *Comm) partMask(part liveness.PartitionInfo) []byte {
	mask := make([]byte, (c.Size()+7)/8)
	for r, w := range c.group {
		if part.Unreachable(w) {
			mask[r/8] |= 1 << (r % 8)
		}
	}
	return mask
}

// notePartitionPlan records the quorum as a plan generation: same
// epoch/mask bookkeeping as fencePlan, but updated symmetrically on
// every member (there is no record broadcast to sync from). The
// counter and trace fire only at the collective's root so CollReplans
// keeps its one-per-replanned-collective meaning.
func (c *Comm) notePartitionPlan(p *sim.Proc, part liveness.PartitionInfo, subs []int, isRoot bool) {
	e := c.eng
	mask := c.partMask(part)
	if bytesEq(mask, c.lastPlanMask) {
		return
	}
	c.planEpoch++
	c.lastPlanMask = mask
	if isRoot {
		e.stats.CollReplans++
		e.im.collReplans.Inc()
		e.tracer.Emitf(p.Now(), trace.MPI, e.ep.Rank(), "coll-replan", "epoch=%d mask=%x quorum=%d", c.planEpoch, mask, len(subs))
	}
}

// bcastSub is the binomial broadcast over the quorum subgroup, rooted
// at position rootPos of subs.
func (c *Comm) bcastSub(p *sim.Proc, subs []int, rootPos, tag int, buf []byte) error {
	n := len(subs)
	rel := (subIndex(subs, c.rank) - rootPos + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := subs[(rel-mask+rootPos)%n]
			if _, err := c.Recv(p, src, tag, buf); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := subs[(rel+mask+rootPos)%n]
			if err := c.Send(p, dst, tag, buf); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// barrierQuorum gathers arrival tokens to the quorum's first member
// and releases over the same subgroup tree.
func (c *Comm) barrierQuorum(p *sim.Proc, part liveness.PartitionInfo, subs []int) error {
	c.notePartitionPlan(p, part, subs, c.rank == subs[0])
	n := len(subs)
	pos := subIndex(subs, c.rank)
	mask := 1
	for mask < n {
		if pos&mask != 0 {
			if err := c.Send(p, subs[pos-mask], tagBarrier, nil); err != nil {
				return err
			}
			break
		}
		if pos+mask < n {
			if _, err := c.Recv(p, subs[pos+mask], tagBarrier, nil); err != nil {
				return err
			}
		}
		mask <<= 1
	}
	return c.bcastSub(p, subs, 0, tagBcast, nil)
}

// allreduceQuorum folds the quorum's contributions to its first member
// over the binomial gather, then broadcasts the result back over the
// subgroup. The unreachable arc's contributions are simply absent —
// the quorum's result is the reduction over the quorum, which is the
// only meaningful result a partitioned collective can produce.
func (c *Comm) allreduceQuorum(p *sim.Proc, part liveness.PartitionInfo, subs []int, op Op, sendBuf, recvBuf []byte) error {
	if len(recvBuf) < len(sendBuf) {
		return ErrTruncated
	}
	c.notePartitionPlan(p, part, subs, c.rank == subs[0])
	n := len(subs)
	pos := subIndex(subs, c.rank)
	acc := recvBuf[:len(sendBuf)]
	copy(acc, sendBuf)
	tmp := make([]byte, len(sendBuf))
	mask := 1
	for mask < n {
		if pos&mask != 0 {
			if err := c.Send(p, subs[pos-mask], tagReduce, acc); err != nil {
				return err
			}
			break
		}
		if pos+mask < n {
			if _, err := c.Recv(p, subs[pos+mask], tagReduce, tmp); err != nil {
				return err
			}
			op(acc, tmp)
		}
		mask <<= 1
	}
	return c.bcastSub(p, subs, 0, tagBcast, acc)
}
