package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Alternative collective algorithms. Stock MPICH selects among several
// algorithms by message size and communicator shape; this file provides
// the classic alternatives to the binomial trees in collect.go so the
// benchmark harness can ablate the choice on each network.

const (
	tagDissem = -110
	tagRDAll  = -111
	tagRS     = -112
	tagPlan   = -113 // re-plan fence record (select.go)
)

// barrierDissemination is the dissemination barrier: ceil(log2 n)
// rounds, in round k each rank sends a token to (rank+2^k) mod n and
// waits for one from (rank-2^k) mod n. More rounds than the tree
// gather/release for small n, but no root bottleneck.
func (c *Comm) barrierDissemination(p *sim.Proc) error {
	n := c.Size()
	for dist := 1; dist < n; dist <<= 1 {
		dst := (c.rank + dist) % n
		src := (c.rank - dist + n) % n
		if _, err := c.Sendrecv(p, dst, tagDissem, nil, src, tagDissem, nil); err != nil {
			return err
		}
	}
	return nil
}

// allreduceRD is recursive-doubling allreduce: log2(n) exchange rounds
// for power-of-two communicators, with the standard fold-in/fold-out
// for the remainder ranks. op must be commutative and associative.
func (c *Comm) allreduceRD(p *sim.Proc, op Op, sendBuf, recvBuf []byte) error {
	if len(recvBuf) < len(sendBuf) {
		return fmt.Errorf("%w: allreduce receive buffer too small", ErrProtocol)
	}
	n := c.Size()
	acc := recvBuf[:len(sendBuf)]
	copy(acc, sendBuf)
	tmp := make([]byte, len(sendBuf))

	// pof2 = largest power of two ≤ n; the first (n-pof2) "extra" pairs
	// fold into their lower partner.
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	inGroup := true
	vrank := c.rank
	switch {
	case c.rank < 2*rem && c.rank%2 == 1:
		// Odd ranks below 2*rem send their contribution down and sit out.
		if err := c.Send(p, c.rank-1, tagRDAll, acc); err != nil {
			return err
		}
		inGroup = false
	case c.rank < 2*rem:
		// Even ranks below 2*rem absorb their upper neighbor.
		if _, err := c.Recv(p, c.rank+1, tagRDAll, tmp); err != nil {
			return err
		}
		op(acc, tmp)
		vrank = c.rank / 2
	default:
		vrank = c.rank - rem
	}

	if inGroup {
		for mask := 1; mask < pof2; mask <<= 1 {
			vpartner := vrank ^ mask
			partner := vpartner
			if vpartner < rem {
				partner = vpartner * 2
			} else {
				partner = vpartner + rem
			}
			if _, err := c.Sendrecv(p, partner, tagRDAll, acc, partner, tagRDAll, tmp); err != nil {
				return err
			}
			op(acc, tmp)
		}
	}

	// Fold out: the sitting-out odd ranks receive the result.
	if c.rank < 2*rem {
		if c.rank%2 == 1 {
			if _, err := c.Recv(p, c.rank-1, tagRDAll, acc); err != nil {
				return err
			}
		} else {
			if err := c.Send(p, c.rank+1, tagRDAll, acc); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReduceScatter combines contributions with op and leaves rank r with
// block r of the result: recv receives len(send)/Size() bytes. This is
// the reduce-then-scatter composition (MPICH's short-vector choice).
func (c *Comm) ReduceScatter(p *sim.Proc, op Op, send, recv []byte) error {
	n := c.Size()
	if len(send)%n != 0 {
		return fmt.Errorf("%w: ReduceScatter send buffer not divisible by %d ranks", ErrProtocol, n)
	}
	blk := len(send) / n
	if len(recv) < blk {
		return fmt.Errorf("%w: ReduceScatter receive buffer below block size %d", ErrProtocol, blk)
	}
	full := make([]byte, len(send))
	if err := c.Reduce(p, 0, op, send, full); err != nil {
		return err
	}
	if c.rank == 0 {
		for r := 1; r < n; r++ {
			if err := c.Send(p, r, tagRS, full[r*blk:(r+1)*blk]); err != nil {
				return err
			}
		}
		copy(recv, full[:blk])
		return nil
	}
	_, err := c.Recv(p, 0, tagRS, recv[:blk])
	return err
}
