package mpi_test

// Fault battery for the receiver-posted-window rendezvous: loss
// windows corrupting window data (repaired by the kRDone checksum /
// kRNak rewrite loop), senders and receivers confirmed dead
// mid-transfer (the survivor gets a DeadPeerError and the posted
// window is reclaimed, never pinned), a flapping receiver (bypass
// windows shorter than the detector's confirmation window), and a
// testing/quick property over generated loss scripts asserting
// exactly-once delivery.

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/liveness"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/xport"
)

func faultAt(d sim.Duration) sim.Time { return sim.Time(0).Add(d) }

// windowedWorld builds an n-node SCRAMNet cluster with the BBP retry
// extension (reliable control under loss), the failure detector, the
// paper's PIO-only billboard thresholds, and an MPI world with the
// zero-copy rendezvous enabled.
func windowedWorld(t testing.TB, k *sim.Kernel, n int, script *fault.Script) (*cluster.Cluster, *mpi.World) {
	t.Helper()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	bbp.Thresholds.SendDMA = 1 << 30
	bbp.Thresholds.RecvDMA = 1 << 30
	bbp.Thresholds.Adaptive = core.AdaptiveConfig{}
	lcfg := liveness.DefaultConfig()
	c, err := cluster.New(k, cluster.Options{
		Nodes: n, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script, Liveness: &lcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mpi.DefaultConfig()
	mcfg.RndvZeroCopy = true
	mcfg.WaitTimeout = 400 * sim.Millisecond
	return c, mpi.NewWorld(c.Endpoints, mcfg)
}

func rndvPayload(seed uint64, n int) []byte {
	b := make([]byte, n)
	sim.NewRNG(seed).Bytes(b)
	return b
}

// TestWindowedRendezvousUnderLossWindow opens a 25% packet-loss window
// across the start of a 64 KiB windowed transfer. Window writes carry
// no per-chunk recovery, so the loss corrupts the receiver's replica
// of the window; the kRDone checksum must catch it and the kRNak
// rewrite must deliver the payload bit-exact, exactly once.
func TestWindowedRendezvousUnderLossWindow(t *testing.T) {
	const size = 64 << 10
	script := &fault.Script{Seed: 77, Actions: []fault.Action{
		{At: faultAt(100 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.25},
		{At: faultAt(2 * sim.Millisecond), Kind: fault.LossStop},
	}}
	k := sim.NewKernel()
	defer k.Close()
	_, w := windowedWorld(t, k, 4, script)
	want := rndvPayload(0x1055, size)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			if err := cm.Send(p, 1, 3, want); err != nil {
				t.Errorf("send under loss: %v", err)
			}
		case 1:
			buf := make([]byte, size)
			st, err := cm.Recv(p, 0, 3, buf)
			if err != nil || st.Len != size {
				t.Errorf("recv under loss: %+v %v", st, err)
				return
			}
			if !bytes.Equal(buf, want) {
				t.Error("payload corrupted despite checksum repair")
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s0, s1 := w.Engine(0).Stats(), w.Engine(1).Stats()
	if s0.RndvZeroCopy != 1 {
		t.Errorf("RndvZeroCopy = %d, want 1 (windowed path not taken)", s0.RndvZeroCopy)
	}
	if s1.Received != 1 {
		t.Errorf("Received = %d, want exactly-once", s1.Received)
	}
	base := int64((size + (16 << 10) - 1) / (16 << 10))
	if s0.ChunksSent <= base {
		t.Errorf("ChunksSent = %d, want > %d (kRNak rewrite never exercised)", s0.ChunksSent, base)
	}
}

// TestWindowedRendezvousSenderDiesMidTransfer kills the sender while
// it is filling the receiver's posted window. The receiver must get a
// DeadPeerError within the detector's window, the posted window must
// be reclaimed (proved by reserving most of the partition right
// afterwards), and a subsequent transfer from a live peer must still
// go zero-copy.
func TestWindowedRendezvousSenderDiesMidTransfer(t *testing.T) {
	const (
		victim = 1
		size   = 256 << 10
	)
	script := &fault.Script{Seed: 9, Actions: []fault.Action{
		{At: faultAt(5 * sim.Millisecond), Kind: fault.NodeFail, Node: victim},
	}}
	k := sim.NewKernel()
	defer k.Close()
	c, w := windowedWorld(t, k, 4, script)
	follow := rndvPayload(0xf0110, 64<<10)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			buf := make([]byte, size)
			_, err := cm.Recv(p, victim, 4, buf)
			var dpe *mpi.DeadPeerError
			if !errors.As(err, &dpe) || dpe.Rank != victim {
				t.Errorf("recv from dying sender: %v, want DeadPeerError{%d}", err, victim)
				return
			}
			// The abandoned transfer's window must be back in the free
			// pool: reserving 3/4 of the partition only works if the
			// 256 KiB window was released.
			wnd := c.Endpoints[0].(xport.Windowed)
			n := c.Endpoints[0].MaxMessage() * 3 / 4
			off, ok := wnd.ReserveWindow(p, 2, n)
			if !ok {
				t.Errorf("partition still pinned after abandoned transfer")
				return
			}
			wnd.ReleaseWindow(off, n)
			// A live peer can still run the zero-copy path end to end.
			got := make([]byte, len(follow))
			st, err := cm.Recv(p, 2, 5, got)
			if err != nil || st.Len != len(follow) || !bytes.Equal(got, follow) {
				t.Errorf("follow-up transfer: %+v %v", st, err)
			}
		case victim:
			// Dies mid-write; the engine must surface an error rather
			// than panic, and the machine is gone either way.
			if err := cm.Send(p, 0, 4, make([]byte, size)); err == nil {
				t.Errorf("dying sender's Send reported success")
			}
		case 2:
			p.Delay(20 * sim.Millisecond)
			if err := cm.Send(p, 0, 5, follow); err != nil {
				t.Errorf("live sender after death: %v", err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.Engine(2).Stats().RndvZeroCopy; got != 1 {
		t.Errorf("follow-up RndvZeroCopy = %d, want 1 (window leak forced fallback?)", got)
	}
}

// TestWindowedRendezvousReceiverDiesMidTransfer is the mirror image:
// the receiver posts the window, goes down mid-fill, and the sender —
// blocked waiting for the kRAck that will never come — must get a
// DeadPeerError and stay fully usable for transfers to other ranks.
func TestWindowedRendezvousReceiverDiesMidTransfer(t *testing.T) {
	const (
		victim = 1
		size   = 256 << 10
	)
	script := &fault.Script{Seed: 13, Actions: []fault.Action{
		{At: faultAt(5 * sim.Millisecond), Kind: fault.NodeFail, Node: victim},
	}}
	k := sim.NewKernel()
	defer k.Close()
	_, w := windowedWorld(t, k, 4, script)
	follow := rndvPayload(0xdead2, 64<<10)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			err := cm.Send(p, victim, 6, make([]byte, size))
			var dpe *mpi.DeadPeerError
			if !errors.As(err, &dpe) || dpe.Rank != victim {
				t.Errorf("send to dying receiver: %v, want DeadPeerError{%d}", err, victim)
				return
			}
			if err := cm.Send(p, 2, 7, follow); err != nil {
				t.Errorf("send to live rank after death: %v", err)
			}
		case victim:
			// Progress the handshake (match the RTS, post the window,
			// reply kCTSW) until the machine dies under the transfer.
			buf := make([]byte, size)
			req, err := cm.Irecv(p, 0, 6, buf)
			if err != nil {
				t.Errorf("victim Irecv: %v", err)
				return
			}
			for !req.Done() && p.Now() < faultAt(8*sim.Millisecond) {
				if _, _, err := cm.Test(p, req); err != nil {
					return // dead machines get no guarantees
				}
				p.Delay(20 * sim.Microsecond)
			}
		case 2:
			got := make([]byte, len(follow))
			st, err := cm.Recv(p, 0, 7, got)
			if err != nil || st.Len != len(follow) || !bytes.Equal(got, follow) {
				t.Errorf("follow-up transfer: %+v %v", st, err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.Engine(0).Stats().RndvZeroCopy; got != 2 {
		t.Errorf("sender RndvZeroCopy = %d, want 2 (doomed + follow-up)", got)
	}
}

// TestWindowedRendezvousFlappingReceiver bounces the receiver through
// fail/repair cycles each shorter than the confirmation window, so
// nobody is ever declared dead but ring packets written during the
// bypass phases never reach the receiver's replica. The checksum loop
// must still converge to bit-exact exactly-once delivery.
func TestWindowedRendezvousFlappingReceiver(t *testing.T) {
	const size = 64 << 10
	// Down 500 µs, up 500 µs, four cycles across the transfer's fill.
	k := sim.NewKernel()
	defer k.Close()
	_, w := windowedWorld(t, k, 4, fault.Flap(1, sim.Millisecond, 4))
	want := rndvPayload(0xf1a9, size)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			if err := cm.Send(p, 1, 8, want); err != nil {
				t.Errorf("send to flapping receiver: %v", err)
			}
		case 1:
			buf := make([]byte, size)
			st, err := cm.Recv(p, 0, 8, buf)
			if err != nil || st.Len != size || !bytes.Equal(buf, want) {
				t.Errorf("flapping recv: %+v %v", st, err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.Engine(1).Stats().Received; got != 1 {
		t.Errorf("Received = %d, want exactly-once through the flaps", got)
	}
	if got := w.Engine(0).Stats().RndvZeroCopy; got != 1 {
		t.Errorf("RndvZeroCopy = %d, want 1", got)
	}
}

// TestWindowedRendezvousLossProperty is the exactly-once property over
// generated loss-only fault scripts: whatever loss windows open, a
// windowed transfer followed by a second one (proving the window was
// recycled, not pinned) delivers both payloads bit-exact with
// Received counting each exactly once.
func TestWindowedRendezvousLossProperty(t *testing.T) {
	const size = 32 << 10
	prop := func(seed uint64) bool {
		script := fault.Generate(seed, fault.GenConfig{
			Horizon:     6 * sim.Millisecond,
			Nodes:       4,
			LossWindows: 2,
			MaxLossRate: 0.5,
		})
		k := sim.NewKernel()
		defer k.Close()
		_, w := windowedWorld(t, k, 4, script)
		ok := true
		w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
			for round := 0; round < 2; round++ {
				want := rndvPayload(seed<<8|uint64(round), size)
				switch cm.Rank() {
				case 0:
					if err := cm.Send(p, 1, round, want); err != nil {
						t.Errorf("seed %d round %d send: %v", seed, round, err)
						ok = false
						return
					}
				case 1:
					buf := make([]byte, size)
					st, err := cm.Recv(p, 0, round, buf)
					if err != nil || st.Len != size || !bytes.Equal(buf, want) {
						t.Errorf("seed %d round %d recv: %+v %v", seed, round, st, err)
						ok = false
						return
					}
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if got := w.Engine(1).Stats().Received; got != 2 {
			t.Errorf("seed %d: Received = %d, want 2", seed, got)
			ok = false
		}
		if got := w.Engine(0).Stats().RndvZeroCopy; got != 2 {
			t.Errorf("seed %d: RndvZeroCopy = %d, want 2", seed, got)
			ok = false
		}
		return ok
	}
	max := 5
	if testing.Short() {
		max = 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}
