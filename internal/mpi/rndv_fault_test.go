package mpi_test

// Fault battery for the receiver-posted-window rendezvous: loss
// windows corrupting window data (repaired by the kRDone checksum /
// kRNak rewrite loop), senders and receivers confirmed dead
// mid-transfer (the survivor gets a DeadPeerError and the posted
// window is reclaimed, never pinned), a flapping receiver (bypass
// windows shorter than the detector's confirmation window), and a
// testing/quick property over generated loss scripts asserting
// exactly-once delivery.

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/liveness"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/xport"
)

func faultAt(d sim.Duration) sim.Time { return sim.Time(0).Add(d) }

// windowedWorld builds an n-node SCRAMNet cluster with the BBP retry
// extension (reliable control under loss), the failure detector, the
// paper's PIO-only billboard thresholds, and an MPI world with the
// zero-copy rendezvous enabled.
func windowedWorld(t testing.TB, k *sim.Kernel, n int, script *fault.Script) (*cluster.Cluster, *mpi.World) {
	t.Helper()
	return windowedWorldTimeout(t, k, n, script, 400*sim.Millisecond)
}

// windowedWorldTimeout is windowedWorld with an explicit wait timeout,
// for the abandonment tests that need waits expiring mid-handshake
// while every peer stays alive.
func windowedWorldTimeout(t testing.TB, k *sim.Kernel, n int, script *fault.Script, wt sim.Duration) (*cluster.Cluster, *mpi.World) {
	t.Helper()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	bbp.Thresholds.SendDMA = 1 << 30
	bbp.Thresholds.RecvDMA = 1 << 30
	bbp.Thresholds.Adaptive = core.AdaptiveConfig{}
	lcfg := liveness.DefaultConfig()
	c, err := cluster.New(k, cluster.Options{
		Nodes: n, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script, Liveness: &lcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mpi.DefaultConfig()
	mcfg.RndvZeroCopy = true
	mcfg.WaitTimeout = wt
	return c, mpi.NewWorld(c.Endpoints, mcfg)
}

// recvEventually re-posts a receive across wait timeouts (each attempt
// progresses the engine, delivering any late protocol traffic) until
// the message lands or the attempt budget is spent.
func recvEventually(p *sim.Proc, cm *mpi.Comm, src, tag int, buf []byte, tries int) (mpi.Status, error) {
	var st mpi.Status
	var err error
	for i := 0; i < tries; i++ {
		st, err = cm.Recv(p, src, tag, buf)
		if !errors.Is(err, mpi.ErrTimeout) {
			break
		}
	}
	return st, err
}

func rndvPayload(seed uint64, n int) []byte {
	b := make([]byte, n)
	sim.NewRNG(seed).Bytes(b)
	return b
}

// TestWindowedRendezvousUnderLossWindow opens a 25% packet-loss window
// across the start of a 64 KiB windowed transfer. Window writes carry
// no per-chunk recovery, so the loss corrupts the receiver's replica
// of the window; the kRDone checksum must catch it and the kRNak
// rewrite must deliver the payload bit-exact, exactly once.
func TestWindowedRendezvousUnderLossWindow(t *testing.T) {
	const size = 64 << 10
	script := &fault.Script{Seed: 77, Actions: []fault.Action{
		{At: faultAt(100 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.25},
		{At: faultAt(2 * sim.Millisecond), Kind: fault.LossStop},
	}}
	k := sim.NewKernel()
	defer k.Close()
	_, w := windowedWorld(t, k, 4, script)
	want := rndvPayload(0x1055, size)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			if err := cm.Send(p, 1, 3, want); err != nil {
				t.Errorf("send under loss: %v", err)
			}
		case 1:
			buf := make([]byte, size)
			st, err := cm.Recv(p, 0, 3, buf)
			if err != nil || st.Len != size {
				t.Errorf("recv under loss: %+v %v", st, err)
				return
			}
			if !bytes.Equal(buf, want) {
				t.Error("payload corrupted despite checksum repair")
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s0, s1 := w.Engine(0).Stats(), w.Engine(1).Stats()
	if s0.RndvZeroCopy != 1 {
		t.Errorf("RndvZeroCopy = %d, want 1 (windowed path not taken)", s0.RndvZeroCopy)
	}
	if s1.Received != 1 {
		t.Errorf("Received = %d, want exactly-once", s1.Received)
	}
	base := int64((size + (16 << 10) - 1) / (16 << 10))
	if s0.ChunksSent <= base {
		t.Errorf("ChunksSent = %d, want > %d (kRNak rewrite never exercised)", s0.ChunksSent, base)
	}
}

// TestWindowedRendezvousSenderDiesMidTransfer kills the sender while
// it is filling the receiver's posted window. The receiver must get a
// DeadPeerError within the detector's window, the posted window must
// be reclaimed (proved by reserving most of the partition right
// afterwards), and a subsequent transfer from a live peer must still
// go zero-copy.
func TestWindowedRendezvousSenderDiesMidTransfer(t *testing.T) {
	const (
		victim = 1
		size   = 256 << 10
	)
	script := &fault.Script{Seed: 9, Actions: []fault.Action{
		{At: faultAt(5 * sim.Millisecond), Kind: fault.NodeFail, Node: victim},
	}}
	k := sim.NewKernel()
	defer k.Close()
	c, w := windowedWorld(t, k, 4, script)
	follow := rndvPayload(0xf0110, 64<<10)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			buf := make([]byte, size)
			_, err := cm.Recv(p, victim, 4, buf)
			var dpe *mpi.DeadPeerError
			if !errors.As(err, &dpe) || dpe.Rank != victim {
				t.Errorf("recv from dying sender: %v, want DeadPeerError{%d}", err, victim)
				return
			}
			// The abandoned transfer's window must be back in the free
			// pool: reserving 3/4 of the partition only works if the
			// 256 KiB window was released.
			wnd := c.Endpoints[0].(xport.Windowed)
			n := c.Endpoints[0].MaxMessage() * 3 / 4
			off, ok := wnd.ReserveWindow(p, 2, n)
			if !ok {
				t.Errorf("partition still pinned after abandoned transfer")
				return
			}
			wnd.ReleaseWindow(off, n)
			// A live peer can still run the zero-copy path end to end.
			got := make([]byte, len(follow))
			st, err := cm.Recv(p, 2, 5, got)
			if err != nil || st.Len != len(follow) || !bytes.Equal(got, follow) {
				t.Errorf("follow-up transfer: %+v %v", st, err)
			}
		case victim:
			// Dies mid-write; the engine must surface an error rather
			// than panic, and the machine is gone either way.
			if err := cm.Send(p, 0, 4, make([]byte, size)); err == nil {
				t.Errorf("dying sender's Send reported success")
			}
		case 2:
			p.Delay(20 * sim.Millisecond)
			if err := cm.Send(p, 0, 5, follow); err != nil {
				t.Errorf("live sender after death: %v", err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.Engine(2).Stats().RndvZeroCopy; got != 1 {
		t.Errorf("follow-up RndvZeroCopy = %d, want 1 (window leak forced fallback?)", got)
	}
}

// TestWindowedRendezvousReceiverDiesMidTransfer is the mirror image:
// the receiver posts the window, goes down mid-fill, and the sender —
// blocked waiting for the kRAck that will never come — must get a
// DeadPeerError and stay fully usable for transfers to other ranks.
func TestWindowedRendezvousReceiverDiesMidTransfer(t *testing.T) {
	const (
		victim = 1
		size   = 256 << 10
	)
	script := &fault.Script{Seed: 13, Actions: []fault.Action{
		{At: faultAt(5 * sim.Millisecond), Kind: fault.NodeFail, Node: victim},
	}}
	k := sim.NewKernel()
	defer k.Close()
	_, w := windowedWorld(t, k, 4, script)
	follow := rndvPayload(0xdead2, 64<<10)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			err := cm.Send(p, victim, 6, make([]byte, size))
			var dpe *mpi.DeadPeerError
			if !errors.As(err, &dpe) || dpe.Rank != victim {
				t.Errorf("send to dying receiver: %v, want DeadPeerError{%d}", err, victim)
				return
			}
			if err := cm.Send(p, 2, 7, follow); err != nil {
				t.Errorf("send to live rank after death: %v", err)
			}
		case victim:
			// Progress the handshake (match the RTS, post the window,
			// reply kCTSW) until the machine dies under the transfer.
			buf := make([]byte, size)
			req, err := cm.Irecv(p, 0, 6, buf)
			if err != nil {
				t.Errorf("victim Irecv: %v", err)
				return
			}
			for !req.Done() && p.Now() < faultAt(8*sim.Millisecond) {
				if _, _, err := cm.Test(p, req); err != nil {
					return // dead machines get no guarantees
				}
				p.Delay(20 * sim.Microsecond)
			}
		case 2:
			got := make([]byte, len(follow))
			st, err := cm.Recv(p, 0, 7, got)
			if err != nil || st.Len != len(follow) || !bytes.Equal(got, follow) {
				t.Errorf("follow-up transfer: %+v %v", st, err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.Engine(0).Stats().RndvZeroCopy; got != 2 {
		t.Errorf("sender RndvZeroCopy = %d, want 2 (doomed + follow-up)", got)
	}
}

// TestWindowedRendezvousFlappingReceiver bounces the receiver through
// fail/repair cycles each shorter than the confirmation window, so
// nobody is ever declared dead but ring packets written during the
// bypass phases never reach the receiver's replica. The checksum loop
// must still converge to bit-exact exactly-once delivery.
func TestWindowedRendezvousFlappingReceiver(t *testing.T) {
	const size = 64 << 10
	// Down 500 µs, up 500 µs, four cycles across the transfer's fill.
	k := sim.NewKernel()
	defer k.Close()
	_, w := windowedWorld(t, k, 4, fault.Flap(1, sim.Millisecond, 4))
	want := rndvPayload(0xf1a9, size)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			if err := cm.Send(p, 1, 8, want); err != nil {
				t.Errorf("send to flapping receiver: %v", err)
			}
		case 1:
			buf := make([]byte, size)
			st, err := cm.Recv(p, 0, 8, buf)
			if err != nil || st.Len != size || !bytes.Equal(buf, want) {
				t.Errorf("flapping recv: %+v %v", st, err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.Engine(1).Stats().Received; got != 1 {
		t.Errorf("Received = %d, want exactly-once through the flaps", got)
	}
	if got := w.Engine(0).Stats().RndvZeroCopy; got != 1 {
		t.Errorf("RndvZeroCopy = %d, want 1", got)
	}
}

// TestWindowedRendezvousLossProperty is the exactly-once property over
// generated loss-only fault scripts: whatever loss windows open, a
// windowed transfer followed by a second one (proving the window was
// recycled, not pinned) delivers both payloads bit-exact with
// Received counting each exactly once.
func TestWindowedRendezvousLossProperty(t *testing.T) {
	const size = 32 << 10
	prop := func(seed uint64) bool {
		script := fault.Generate(seed, fault.GenConfig{
			Horizon:     6 * sim.Millisecond,
			Nodes:       4,
			LossWindows: 2,
			MaxLossRate: 0.5,
		})
		k := sim.NewKernel()
		defer k.Close()
		_, w := windowedWorld(t, k, 4, script)
		ok := true
		w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
			for round := 0; round < 2; round++ {
				want := rndvPayload(seed<<8|uint64(round), size)
				switch cm.Rank() {
				case 0:
					if err := cm.Send(p, 1, round, want); err != nil {
						t.Errorf("seed %d round %d send: %v", seed, round, err)
						ok = false
						return
					}
				case 1:
					buf := make([]byte, size)
					st, err := cm.Recv(p, 0, round, buf)
					if err != nil || st.Len != size || !bytes.Equal(buf, want) {
						t.Errorf("seed %d round %d recv: %+v %v", seed, round, st, err)
						ok = false
						return
					}
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if got := w.Engine(1).Stats().Received; got != 2 {
			t.Errorf("seed %d: Received = %d, want 2", seed, got)
			ok = false
		}
		if got := w.Engine(0).Stats().RndvZeroCopy; got != 2 {
			t.Errorf("seed %d: RndvZeroCopy = %d, want 2", seed, got)
			ok = false
		}
		return ok
	}
	max := 5
	if testing.Short() {
		max = 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowedRendezvousReceiverTimeoutLiveSenderReapsWindow times the
// receiver out mid-transfer while the sender — alive the whole time —
// is still filling the posted window. The abandoned window must NOT be
// released under the sender's in-flight stores (that would re-lend the
// words and trip the single-writer check); it is parked until the
// sender's late kRDone proves the fill over, at which point it is
// reclaimed without panicking the engine, without delivering the
// abandoned payload, and without pinning partition space.
func TestWindowedRendezvousReceiverTimeoutLiveSenderReapsWindow(t *testing.T) {
	const size = 256 << 10
	k := sim.NewKernel()
	defer k.Close()
	c, w := windowedWorldTimeout(t, k, 4, nil, 2*sim.Millisecond)
	follow := rndvPayload(0x2ea9, 1<<10)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			// Start late enough that the kCTSW beats the receiver's
			// deadline but the ~40 ms window fill does not.
			p.Delay(500 * sim.Microsecond)
			if err := cm.Send(p, 1, 10, make([]byte, size)); !errors.Is(err, mpi.ErrTimeout) {
				t.Errorf("slow send past an abandoned receiver: %v, want ErrTimeout", err)
			}
		case 1:
			buf := make([]byte, size)
			if _, err := cm.Recv(p, 0, 10, buf); !errors.Is(err, mpi.ErrTimeout) {
				t.Errorf("recv from slow sender: %v, want ErrTimeout", err)
				return
			}
			// Keep progressing until rank 2's message lands (~50 ms):
			// the sender's kRDone arrives meanwhile and must reap the
			// parked window instead of panicking on the unknown request.
			got := make([]byte, len(follow))
			st, err := recvEventually(p, cm, 2, 11, got, 60)
			if err != nil || st.Len != len(follow) || !bytes.Equal(got, follow) {
				t.Errorf("follow-up eager recv: %+v %v", st, err)
				return
			}
			// The zombie window must be back in the free pool.
			wnd := c.Endpoints[1].(xport.Windowed)
			n := c.Endpoints[1].MaxMessage() * 3 / 4
			off, ok := wnd.ReserveWindow(p, 0, n)
			if !ok {
				t.Errorf("partition still pinned after the late kRDone reap")
				return
			}
			wnd.ReleaseWindow(off, n)
		case 2:
			p.Delay(50 * sim.Millisecond)
			if err := cm.Send(p, 1, 11, follow); err != nil {
				t.Errorf("follow-up eager send: %v", err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The abandoned payload must never count as delivered.
	if got := w.Engine(1).Stats().Received; got != 1 {
		t.Errorf("Received = %d, want 1 (follow-up only)", got)
	}
}

// TestWindowedRendezvousSenderTimeoutRejectsWindowGrant is the mirror
// abandonment: the sender gives up before the window grant arrives.
// Its kCTSW handler must not panic on the unknown request; it replies
// kRRej so the receiver — which posted a whole-payload window — can
// reclaim the span immediately instead of leaking it until peer death.
func TestWindowedRendezvousSenderTimeoutRejectsWindowGrant(t *testing.T) {
	const size = 256 << 10
	k := sim.NewKernel()
	defer k.Close()
	c, w := windowedWorldTimeout(t, k, 4, nil, 2*sim.Millisecond)
	follow := rndvPayload(0x2e1, 1<<10)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			// The receiver only posts its receive at 3 ms, past this
			// send's 2 ms deadline.
			if err := cm.Send(p, 1, 12, make([]byte, size)); !errors.Is(err, mpi.ErrTimeout) {
				t.Errorf("send to tardy receiver: %v, want ErrTimeout", err)
				return
			}
			// Keep progressing so the late kCTSW is answered with kRRej.
			got := make([]byte, len(follow))
			st, err := recvEventually(p, cm, 2, 13, got, 60)
			if err != nil || st.Len != len(follow) || !bytes.Equal(got, follow) {
				t.Errorf("follow-up eager recv: %+v %v", st, err)
			}
		case 1:
			p.Delay(3 * sim.Millisecond)
			buf := make([]byte, size)
			if _, err := cm.Recv(p, 0, 12, buf); !errors.Is(err, mpi.ErrTimeout) {
				t.Errorf("recv whose sender abandoned: %v, want ErrTimeout", err)
				return
			}
			// The rejected grant must have released the window already.
			wnd := c.Endpoints[1].(xport.Windowed)
			n := c.Endpoints[1].MaxMessage() * 3 / 4
			off, ok := wnd.ReserveWindow(p, 0, n)
			if !ok {
				t.Errorf("partition still pinned after kRRej")
				return
			}
			wnd.ReleaseWindow(off, n)
		case 2:
			p.Delay(8 * sim.Millisecond)
			if err := cm.Send(p, 0, 13, follow); err != nil {
				t.Errorf("follow-up eager send: %v", err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowedRendezvousPersistentLossFallsBackSequential holds a 35%
// loss rate across the first three window fills of a 64 KiB transfer
// (each fill takes ~14 ms; the window closes at 34 ms, inside the
// third). Every fill is torn — tens of thousands of unprotected window
// packets cannot all survive — so the kRNak rewrite loop must not
// cycle until the wait timeout: after maxWindowNaks consecutive
// mismatches the receiver hands the window back (kRFall) and the
// payload is delivered bit-exact through the sequential kRData path,
// which rides the billboard retry machinery (its 8 × 200 µs budget
// bridges the residual overlap with the loss window).
func TestWindowedRendezvousPersistentLossFallsBackSequential(t *testing.T) {
	const size = 64 << 10
	script := &fault.Script{Seed: 41, Actions: []fault.Action{
		{At: faultAt(100 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.35},
		{At: faultAt(34 * sim.Millisecond), Kind: fault.LossStop},
	}}
	k := sim.NewKernel()
	defer k.Close()
	_, w := windowedWorld(t, k, 4, script)
	want := rndvPayload(0xfa11, size)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			if err := cm.Send(p, 1, 14, want); err != nil {
				t.Errorf("send under persistent loss: %v", err)
			}
		case 1:
			buf := make([]byte, size)
			st, err := cm.Recv(p, 0, 14, buf)
			if err != nil || st.Len != size {
				t.Errorf("recv under persistent loss: %+v %v", st, err)
				return
			}
			if !bytes.Equal(buf, want) {
				t.Error("payload corrupted through the sequential fallback")
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s0, s1 := w.Engine(0).Stats(), w.Engine(1).Stats()
	if s1.Received != 1 {
		t.Errorf("Received = %d, want exactly-once", s1.Received)
	}
	if s0.RndvZeroCopy != 1 {
		t.Errorf("RndvZeroCopy = %d, want 1 (the windowed path was attempted)", s0.RndvZeroCopy)
	}
	// Three torn window fills plus the sequential resend.
	base := int64((size + (16 << 10) - 1) / (16 << 10))
	if s0.ChunksSent < 4*base {
		t.Errorf("ChunksSent = %d, want >= %d (fallback after the nak budget)", s0.ChunksSent, 4*base)
	}
}
