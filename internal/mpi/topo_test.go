package mpi_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestScanPrefixSums(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		send := make([]byte, 8)
		binary.LittleEndian.PutUint64(send, uint64(c.Rank()+1))
		recv := make([]byte, 8)
		if err := c.Scan(p, mpi.SumI64, send, recv); err != nil {
			t.Error(err)
			return
		}
		got := int64(binary.LittleEndian.Uint64(recv))
		want := int64(0)
		for r := 0; r <= c.Rank(); r++ {
			want += int64(r + 1)
		}
		if got != want {
			t.Errorf("rank %d scan = %d, want %d", c.Rank(), got, want)
		}
	})
}

func TestGathervVariableSizes(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		// Rank r contributes r+1 bytes of value r.
		send := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
		var recvs [][]byte
		if c.Rank() == 2 {
			for r := 0; r < 4; r++ {
				recvs = append(recvs, make([]byte, r+1))
			}
		}
		if err := c.Gatherv(p, 2, send, recvs); err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 2 {
			for r := 0; r < 4; r++ {
				if len(recvs[r]) != r+1 || recvs[r][r] != byte(r) {
					t.Errorf("slot %d = %v", r, recvs[r])
				}
			}
		}
	})
}

func TestScattervVariableSizes(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		var sends [][]byte
		if c.Rank() == 1 {
			for r := 0; r < 4; r++ {
				sends = append(sends, bytes.Repeat([]byte{byte(10 + r)}, 2*r+1))
			}
		}
		recv := make([]byte, 16)
		n, err := c.Scatterv(p, 1, sends, recv)
		if err != nil {
			t.Error(err)
			return
		}
		want := 2*c.Rank() + 1
		if n != want || recv[0] != byte(10+c.Rank()) {
			t.Errorf("rank %d: n=%d val=%d", c.Rank(), n, recv[0])
		}
	})
}

func TestCartCoordsRankRoundtrip(t *testing.T) {
	run(t, cluster.SCRAMNet, 6, false, func(p *sim.Proc, c *mpi.Comm) {
		ct, err := mpi.CartCreate(c, []int{2, 3}, []bool{false, true})
		if err != nil {
			t.Error(err)
			return
		}
		for r := 0; r < 6; r++ {
			co := ct.Coords(r)
			back, ok := ct.Rank(co)
			if !ok || back != r {
				t.Errorf("rank %d -> %v -> %d (ok=%v)", r, co, back, ok)
			}
		}
		// Row-major: rank 4 = (1,1) on a 2x3 grid.
		co := ct.Coords(4)
		if co[0] != 1 || co[1] != 1 {
			t.Errorf("Coords(4) = %v", co)
		}
	})
}

func TestCartShiftPeriodicAndEdge(t *testing.T) {
	run(t, cluster.SCRAMNet, 6, false, func(p *sim.Proc, c *mpi.Comm) {
		ct, err := mpi.CartCreate(c, []int{2, 3}, []bool{false, true})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 { // coords (0,0)
			// Dim 0 is non-periodic: shifting up from row 0 has no source.
			src, dst := ct.Shift(0, 1)
			if src != mpi.ProcNull || dst != 3 {
				t.Errorf("dim0 shift: src=%d dst=%d", src, dst)
			}
			// Dim 1 is periodic: (0,-1) wraps to (0,2) = rank 2.
			src, dst = ct.Shift(1, 1)
			if src != 2 || dst != 1 {
				t.Errorf("dim1 shift: src=%d dst=%d", src, dst)
			}
		}
	})
}

func TestCartCreateValidation(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		if _, err := mpi.CartCreate(c, []int{3, 2}, []bool{false, false}); err == nil {
			t.Error("6-cell grid accepted on 4 ranks")
		}
		if _, err := mpi.CartCreate(c, []int{2, 2}, []bool{false}); err == nil {
			t.Error("dims/periodic mismatch accepted")
		}
	})
}

func TestCartSendrecvShiftRing(t *testing.T) {
	// A periodic 1-D ring: everyone passes its rank to the right; each
	// receives its left neighbor's rank.
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		ct, err := mpi.CartCreate(c, []int{4}, []bool{true})
		if err != nil {
			t.Error(err)
			return
		}
		send := []byte{byte(c.Rank())}
		recv := make([]byte, 1)
		got, err := ct.SendrecvShift(p, 0, 1, 33, send, recv)
		if err != nil || !got {
			t.Errorf("shift exchange: got=%v err=%v", got, err)
			return
		}
		want := byte((c.Rank() + 3) % 4)
		if recv[0] != want {
			t.Errorf("rank %d received %d, want %d", c.Rank(), recv[0], want)
		}
	})
}

func TestCartSendrecvShiftNonPeriodicEdges(t *testing.T) {
	run(t, cluster.SCRAMNet, 3, false, func(p *sim.Proc, c *mpi.Comm) {
		ct, err := mpi.CartCreate(c, []int{3}, []bool{false})
		if err != nil {
			t.Error(err)
			return
		}
		send := []byte{byte(100 + c.Rank())}
		recv := make([]byte, 1)
		got, err := ct.SendrecvShift(p, 0, 1, 34, send, recv)
		if err != nil {
			t.Error(err)
			return
		}
		switch c.Rank() {
		case 0: // no left neighbor
			if got {
				t.Error("rank 0 should receive nothing")
			}
		default:
			if !got || recv[0] != byte(100+c.Rank()-1) {
				t.Errorf("rank %d: got=%v val=%d", c.Rank(), got, recv[0])
			}
		}
	})
}

func TestDirectADILowersLatency(t *testing.T) {
	lat := func(direct bool) float64 {
		k := sim.NewKernel()
		c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, PIOOnlyBBP: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := mpi.DefaultConfig()
		cfg.DirectADI = direct
		w := mpi.NewWorld(c.Endpoints, cfg)
		var sent, recvd sim.Time
		w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
			if cm.Rank() == 0 {
				p.Delay(20 * sim.Microsecond)
				sent = p.Now()
				if err := cm.Send(p, 1, 0, []byte{1, 2, 3, 4}); err != nil {
					t.Error(err)
				}
			} else if cm.Rank() == 1 {
				buf := make([]byte, 8)
				if _, err := cm.Recv(p, 0, 0, buf); err != nil {
					t.Error(err)
				}
				recvd = p.Now()
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return recvd.Sub(sent).Microseconds()
	}
	layered, direct := lat(false), lat(true)
	if direct >= layered {
		t.Fatalf("direct ADI %.1fµs not below layered %.1fµs", direct, layered)
	}
	if layered-direct < 5 {
		t.Fatalf("direct ADI saves only %.1fµs; expected a visible win (paper §7)", layered-direct)
	}
}
