package mpi_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/liveness"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// This battery degrades the unified collectives (select.go) through the
// failure detector's states: a *suspected* (bypassed then repaired)
// member must not change any collective's result — the NIC path
// declines and the re-planned tree routes around the suspect — while a
// *confirmed-dead* member must surface as a DeadPeerError within the
// confirmation window on every survivor.

// treeCluster builds a liveness-enabled SCRAMNet testbed without the
// stream extension, so Auto resolves to the (re-planned) tree paths.
// The BBP runs PIO-only with the retry extension — control must stay
// reliable across the fault script's down windows.
func treeCluster(t testing.TB, nodes int, live *liveness.Config, faults *fault.Script, mcfg mpi.Config) (*sim.Kernel, *cluster.Cluster, *mpi.World) {
	t.Helper()
	k := sim.NewKernel()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	bbp.Thresholds.SendDMA = 1 << 30
	bbp.Thresholds.RecvDMA = 1 << 30
	bbp.Thresholds.Adaptive = core.AdaptiveConfig{}
	c, err := cluster.New(k, cluster.Options{
		Nodes:    nodes,
		Net:      cluster.SCRAMNet,
		BBP:      &bbp,
		Liveness: live,
		Faults:   faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, c, mpi.NewWorld(c.Endpoints, mcfg)
}

// suspectScript bypasses `node` at 1 ms and repairs it at 1.7 ms: a
// collective entered at 1.72 ms runs while the member is suspected but
// alive (the E12 degradation timing).
func suspectScript(node int) *fault.Script {
	return &fault.Script{Seed: 77, Actions: []fault.Action{
		{At: sim.Time(0).Add(1 * sim.Millisecond), Kind: fault.NodeFail, Node: node},
		{At: sim.Time(0).Add(1700 * sim.Microsecond), Kind: fault.NodeRepair, Node: node},
	}}
}

func delayUntil(p *sim.Proc, at sim.Time) {
	if d := at.Sub(p.Now()); d > 0 {
		p.Delay(d)
	}
}

// TestBarrierSuspectDegradesAndSynchronizes: on a stream-enabled world
// with one member suspected, Auto's NIC-combined barrier must decline
// (all-alive gate), fall back to the host tree, and still synchronize
// every rank — the suspected member included.
func TestBarrierSuspectDegradesAndSynchronizes(t *testing.T) {
	const nodes, victim = 8, 5
	live := liveness.DefaultConfig()
	k, _, w := streamCluster(t, nodes, &live, suspectScript(victim))
	start := sim.Time(0).Add(1720 * sim.Microsecond)
	var lastEntry sim.Time
	exits := make([]sim.Time, nodes)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		delayUntil(p, start)
		p.Delay(sim.Duration(cm.Rank()*3) * sim.Microsecond) // skew entries
		if p.Now() > lastEntry {
			lastEntry = p.Now()
		}
		if err := cm.Barrier(p); err != nil {
			t.Errorf("rank %d: %v", cm.Rank(), err)
			return
		}
		exits[cm.Rank()] = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r, e := range exits {
		if e < lastEntry {
			t.Errorf("rank %d exited at %v before the last arrival %v", r, e, lastEntry)
		}
	}
	st := w.Engine(0).Stats()
	if st.NICBarriers != 0 {
		t.Errorf("suspected member did not keep the barrier off the NIC path: %+v", st)
	}
	if st.StreamFallbacks == 0 {
		t.Errorf("barrier never recorded its fallback: %+v", st)
	}
}

// TestBarrierReplansAroundBypassedMember bypasses a member *inside* the
// barrier: it arrives (its gather contribution lands) and is then taken
// off the ring across the root's release fence. The root must cut a
// re-plan epoch, route the release around the suspect, and the retry
// extension must still deliver the suspect its release after repair —
// the barrier completes everywhere with nobody confirmed dead.
func TestBarrierReplansAroundBypassedMember(t *testing.T) {
	const nodes, victim = 8, 5
	live := liveness.DefaultConfig()
	script := &fault.Script{Seed: 77, Actions: []fault.Action{
		{At: sim.Time(0).Add(1 * sim.Millisecond), Kind: fault.NodeFail, Node: victim},
		{At: sim.Time(0).Add(2100 * sim.Microsecond), Kind: fault.NodeRepair, Node: victim},
	}}
	k, _, w := treeCluster(t, nodes, &live, script, mpi.DefaultConfig())
	exits := make([]sim.Time, nodes)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		entry := 1720 * sim.Microsecond
		if cm.Rank() == victim {
			entry = 900 * sim.Microsecond // arrives before its bypass at 1 ms
		}
		delayUntil(p, sim.Time(0).Add(entry))
		if err := cm.Barrier(p); err != nil {
			t.Errorf("rank %d: %v", cm.Rank(), err)
			return
		}
		exits[cm.Rank()] = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.Engine(0).Stats().CollReplans; got != 1 {
		t.Errorf("root cut %d re-plan epochs, want 1", got)
	}
	repair := sim.Time(0).Add(2100 * sim.Microsecond)
	if exits[victim] < repair {
		t.Errorf("bypassed member released at %v, before its repair at %v", exits[victim], repair)
	}
	for r, e := range exits {
		if e < sim.Time(0).Add(1720*sim.Microsecond) {
			t.Errorf("rank %d exited at %v before the last arrival", r, e)
		}
	}
}

// TestBcastSuspectReplanMatchesOracle: the re-planned tree broadcast
// must deliver the all-alive result to every rank — the suspect (a
// leaf off the root) included — and cut exactly one re-plan epoch,
// which clearing the suspicion later does not count again.
func TestBcastSuspectReplanMatchesOracle(t *testing.T) {
	const nodes, victim = 8, 5
	live := liveness.DefaultConfig()
	k, _, w := treeCluster(t, nodes, &live, suspectScript(victim), mpi.DefaultConfig())
	oracle := func(round byte) []byte {
		buf := make([]byte, 96)
		for i := range buf {
			buf[i] = round ^ byte(i*7)
		}
		return buf
	}
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		for round, at := range []sim.Time{
			sim.Time(0).Add(1720 * sim.Microsecond), // victim suspected
			sim.Time(0).Add(8 * sim.Millisecond),    // suspicion cleared
		} {
			delayUntil(p, at)
			want := oracle(byte(round))
			buf := make([]byte, len(want))
			if cm.Rank() == 0 {
				copy(buf, want)
			}
			if err := cm.Bcast(p, 0, buf); err != nil {
				t.Errorf("rank %d round %d: %v", cm.Rank(), round, err)
				return
			}
			if !bytes.Equal(buf, want) {
				t.Errorf("rank %d round %d: payload differs from the all-alive oracle", cm.Rank(), round)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.Engine(0).Stats().CollReplans; got != 1 {
		t.Errorf("root cut %d re-plan epochs, want exactly 1 (suspicion appearing; clearing is not a re-plan)", got)
	}
}

// TestAllreduceSuspectFallsBackMatchesOracle: with a member suspected,
// Auto's NIC-combined allreduce must decline on every rank together and
// the tree fallback must produce the all-alive sums.
func TestAllreduceSuspectFallsBackMatchesOracle(t *testing.T) {
	const nodes, victim = 8, 3
	live := liveness.DefaultConfig()
	k, _, w := streamCluster(t, nodes, &live, suspectScript(victim))
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		delayUntil(p, sim.Time(0).Add(1720*sim.Microsecond))
		me := cm.Rank()
		send := make([]byte, 16)
		for lane := 0; lane < 4; lane++ {
			putU32(send[4*lane:], uint32(me+1)*uint32(lane+1))
		}
		recv := make([]byte, 16)
		if err := cm.Allreduce(p, mpi.SumU32, send, recv); err != nil {
			t.Errorf("rank %d: %v", me, err)
			return
		}
		for lane := 0; lane < 4; lane++ {
			want := uint32(0)
			for r := 0; r < nodes; r++ {
				want += uint32(r+1) * uint32(lane+1)
			}
			if got := getU32(recv[4*lane:]); got != want {
				t.Errorf("rank %d lane %d: got %d want %d", me, lane, got, want)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		st := w.Engine(i).Stats()
		if st.StreamAllreduces != 0 || st.StreamFallbacks == 0 {
			t.Errorf("rank %d: want a uniform decline to the tree, stats %+v", i, st)
		}
	}
}

// TestBarrierTreeMidCollectiveDeath: a member dies mid-barrier on the
// tree path; every survivor — including ranks waiting on *healthy*
// peers that themselves aborted — must get a DeadPeerError blaming the
// victim within the confirmation window, because internal-tag waits
// check the whole membership, not just the direct peer.
func TestBarrierTreeMidCollectiveDeath(t *testing.T) {
	const nodes, victim = 8, 3
	kill := sim.Time(0).Add(1 * sim.Millisecond)
	script := &fault.Script{Seed: 9, Actions: []fault.Action{
		{At: kill, Kind: fault.NodeFail, Node: victim},
	}}
	live := liveness.DefaultConfig()
	mcfg := mpi.DefaultConfig()
	mcfg.WaitTimeout = 100 * sim.Millisecond
	k, _, w := treeCluster(t, nodes, &live, script, mcfg)
	errAt := make([]sim.Time, nodes)
	errOf := make([]error, nodes)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		if cm.Rank() == victim {
			return // the machine dies with its process
		}
		delayUntil(p, kill.Add(50*sim.Microsecond))
		errOf[cm.Rank()] = cm.Barrier(p)
		errAt[cm.Rank()] = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	bound := live.ConfirmAfter + 20*live.Period
	for r := 0; r < nodes; r++ {
		if r == victim {
			continue
		}
		var dpe *mpi.DeadPeerError
		if !errors.As(errOf[r], &dpe) {
			t.Fatalf("rank %d barrier returned %v, want DeadPeerError", r, errOf[r])
		}
		if dpe.Rank != victim {
			t.Fatalf("rank %d blamed %d, want %d", r, dpe.Rank, victim)
		}
		if delay := errAt[r].Sub(kill); delay <= 0 || delay > bound {
			t.Fatalf("rank %d errored %v after the kill, want (0, %v]", r, delay, bound)
		}
	}
}

// TestFlappingMemberCollectiveSequence: a member oscillating through
// fail/repair cycles (fault.Flap) is repeatedly suspected but never
// confirmed dead; a sequence of broadcasts and barriers threaded
// through the flap windows must all complete with the all-alive result.
func TestFlappingMemberCollectiveSequence(t *testing.T) {
	const nodes, victim = 8, 5
	live := liveness.DefaultConfig()
	mcfg := mpi.DefaultConfig()
	mcfg.WaitTimeout = 100 * sim.Millisecond
	k, _, w := treeCluster(t, nodes, &live, fault.Flap(victim, 2*sim.Millisecond, 3), mcfg)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		for round := 0; round < 6; round++ {
			delayUntil(p, sim.Time(0).Add(sim.Duration(1500+round*1500)*sim.Microsecond))
			want := make([]byte, 64)
			for i := range want {
				want[i] = byte(round*31 + i)
			}
			buf := make([]byte, len(want))
			if cm.Rank() == 0 {
				copy(buf, want)
			}
			if err := cm.Bcast(p, 0, buf); err != nil {
				t.Errorf("rank %d round %d bcast: %v", cm.Rank(), round, err)
				return
			}
			if !bytes.Equal(buf, want) {
				t.Errorf("rank %d round %d: payload differs from the all-alive oracle", cm.Rank(), round)
				return
			}
			if err := cm.Barrier(p); err != nil {
				t.Errorf("rank %d round %d barrier: %v", cm.Rank(), round, err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
