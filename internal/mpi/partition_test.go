package mpi_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/liveness"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// This battery drives the unified collectives through a declared ring
// partition (DESIGN.md §16): minority ranks get a typed PartitionError
// at the entry gate, majority ranks re-plan Barrier/Bcast/Allreduce
// over the quorum subgroup, and a collective already in flight when
// the declaration lands is abandoned group-wide on every rank.

// doubleCut severs segments 1 (1→2) and 3 (3→4) of a 5-node ring at
// cut, splitting it into a majority arc {4,0,1} and a minority arc
// {2,3}, and splices both at heal.
func doubleCut(cut, heal sim.Duration) *fault.Script {
	return &fault.Script{Seed: 55, Actions: []fault.Action{
		{At: sim.Time(0).Add(cut), Kind: fault.LinkCut, Node: 1},
		{At: sim.Time(0).Add(cut), Kind: fault.LinkCut, Node: 3},
		{At: sim.Time(0).Add(heal), Kind: fault.LinkSplice, Node: 1},
		{At: sim.Time(0).Add(heal), Kind: fault.LinkSplice, Node: 3},
	}}
}

// TestQuorumCollectives enters the collectives after the partition is
// declared: the majority's Barrier, Allreduce and quorum-rooted Bcast
// complete over the subgroup trees, a far-rooted Bcast fails typed,
// and every minority rank is fenced at the gate.
func TestQuorumCollectives(t *testing.T) {
	const (
		nodes = 5
		cutAt = 2 * sim.Millisecond
	)
	live := liveness.DefaultConfig()
	mcfg := mpi.DefaultConfig()
	mcfg.WaitTimeout = 100 * sim.Millisecond
	k, _, w := treeCluster(t, nodes, &live, doubleCut(cutAt, 80*sim.Millisecond), mcfg)
	defer k.Close()

	majority := map[int]bool{4: true, 0: true, 1: true}
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		p.Delay(cutAt + 4*sim.Millisecond) // past the declaration
		if !majority[me] {
			err := cm.Barrier(p)
			var pe *mpi.PartitionError
			if !errors.As(err, &pe) || !pe.Minority {
				t.Errorf("minority rank %d barrier: %v, want minority PartitionError", me, err)
				return
			}
			if msg := pe.Error(); !strings.Contains(msg, "minority") {
				t.Errorf("minority rank %d error text %q names the wrong side", me, msg)
			}
			if err := cm.Allreduce(p, mpi.SumU32, make([]byte, 4), make([]byte, 4)); !errors.As(err, new(*mpi.PartitionError)) {
				t.Errorf("minority rank %d allreduce: %v", me, err)
			}
			if err := cm.Bcast(p, 2, []byte{1}); !errors.As(err, new(*mpi.PartitionError)) {
				t.Errorf("minority rank %d bcast: %v", me, err)
			}
			return
		}
		for round := 0; round < 2; round++ { // round 2 reuses the noted plan
			if err := cm.Barrier(p); err != nil {
				t.Errorf("majority rank %d round %d barrier: %v", me, round, err)
				return
			}
		}
		var in, out [4]byte
		in[0] = byte(1 << me)
		if err := cm.Allreduce(p, mpi.SumU32, in[:], out[:]); err != nil {
			t.Errorf("majority rank %d allreduce: %v", me, err)
			return
		}
		if want := byte(1<<4 | 1<<0 | 1<<1); out[0] != want {
			t.Errorf("majority rank %d quorum sum %#x, want %#x", me, out[0], want)
		}
		buf := []byte{0}
		if me == 4 {
			buf[0] = 9 // root away from subs[0], exercising the rotated tree
		}
		if err := cm.Bcast(p, 4, buf); err != nil || buf[0] != 9 {
			t.Errorf("majority rank %d quorum bcast: %v (payload %d)", me, err, buf[0])
		}
		if err := cm.Bcast(p, 3, buf); !errors.As(err, new(*mpi.PartitionError)) {
			t.Errorf("majority rank %d far-rooted bcast: %v", me, err)
		}
		if err := cm.Send(p, 2, 5, []byte{1}); !errors.As(err, new(*mpi.PartitionError)) {
			t.Errorf("majority rank %d cross-cut send: %v", me, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nodes; r++ {
		if pe := w.Engine(r).Stats().PartitionErrors; pe == 0 {
			t.Errorf("rank %d counted no partition errors", r)
		}
	}
}

// TestStraddlingCollectiveAbandoned enters a Barrier between the cut
// landing and the partition being declared: the fixed tree spans both
// arcs, so every rank — majority ranks gathered behind an aborted
// same-side peer included — must abandon it with a PartitionError of
// the correct side instead of waiting out WaitTimeout.
func TestStraddlingCollectiveAbandoned(t *testing.T) {
	const (
		nodes = 5
		cutAt = 2 * sim.Millisecond
	)
	live := liveness.DefaultConfig()
	mcfg := mpi.DefaultConfig()
	mcfg.WaitTimeout = 100 * sim.Millisecond
	k, _, w := treeCluster(t, nodes, &live, doubleCut(cutAt, 80*sim.Millisecond), mcfg)
	defer k.Close()

	majority := map[int]bool{4: true, 0: true, 1: true}
	errAt := make([]sim.Time, nodes)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		p.Delay(cutAt + 100*sim.Microsecond) // after the cut, before the declaration
		err := cm.Barrier(p)
		errAt[me] = p.Now()
		var pe *mpi.PartitionError
		if !errors.As(err, &pe) {
			t.Errorf("rank %d straddling barrier: %v, want PartitionError", me, err)
			return
		}
		if pe.Minority == majority[me] {
			t.Errorf("rank %d error claims minority=%v", me, pe.Minority)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	bound := live.ConfirmAfter + 20*live.Period
	for r := 0; r < nodes; r++ {
		delay := errAt[r].Sub(sim.Time(0).Add(cutAt))
		if delay <= 0 || delay > bound {
			t.Fatalf("rank %d abandoned the barrier %v after the cut, want (0, %v]", r, delay, bound)
		}
	}
}

// TestPartitionHealRestoresCollectives runs the full cycle inside MPI:
// fenced during the partition, then — after the splice and resync —
// the same world completes an all-member barrier and allreduce.
func TestPartitionHealRestoresCollectives(t *testing.T) {
	const (
		nodes  = 5
		cutAt  = 2 * sim.Millisecond
		healAt = 10 * sim.Millisecond
	)
	live := liveness.DefaultConfig()
	mcfg := mpi.DefaultConfig()
	mcfg.WaitTimeout = 100 * sim.Millisecond
	k, _, w := treeCluster(t, nodes, &live, doubleCut(cutAt, healAt), mcfg)
	defer k.Close()

	majority := map[int]bool{4: true, 0: true, 1: true}
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		p.Delay(cutAt + 4*sim.Millisecond)
		err := cm.Barrier(p)
		if majority[me] {
			if err != nil {
				t.Errorf("majority rank %d mid-partition barrier: %v", me, err)
				return
			}
		} else if !errors.As(err, new(*mpi.PartitionError)) {
			t.Errorf("minority rank %d mid-partition barrier: %v", me, err)
			return
		}
		// Wait out the heal and the resync, then rejoin a full
		// collective: the post-heal plan mask change must re-fence the
		// tree back to all five members.
		if d := sim.Time(0).Add(healAt + 5*sim.Millisecond).Sub(p.Now()); d > 0 {
			p.Delay(d)
		}
		if err := cm.Barrier(p); err != nil {
			t.Errorf("rank %d post-heal barrier: %v", me, err)
			return
		}
		var in, out [4]byte
		in[0] = 1
		if err := cm.Allreduce(p, mpi.SumU32, in[:], out[:]); err != nil {
			t.Errorf("rank %d post-heal allreduce: %v", me, err)
			return
		}
		if out[0] != nodes {
			t.Errorf("rank %d post-heal sum=%d, want %d", me, out[0], nodes)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
