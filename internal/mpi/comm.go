package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xport"
)

// World is one MPI job: an engine per rank over a common transport.
type World struct {
	engines []*Engine
	comms   []*Comm // COMM_WORLD handle per rank
}

// NewWorld builds a world over the given per-rank transport endpoints
// (one per process, same transport family).
func NewWorld(eps []xport.Endpoint, cfg Config) *World {
	w := &World{}
	if cfg.McastCollectives {
		// Multicast collectives only make sense on a transport with
		// hardware replication.
		cfg.McastCollectives = len(eps) > 0 && eps[0].NativeMcast()
	}
	for _, ep := range eps {
		w.engines = append(w.engines, newEngine(ep, cfg))
	}
	for i, eng := range w.engines {
		group := make([]int, len(eps))
		for j := range group {
			group[j] = j
		}
		c := &Comm{eng: eng, ctx: 1, group: group, rank: i}
		eng.comms[1] = c
		eng.nextCtx = 2
		w.comms = append(w.comms, c)
	}
	return w
}

// Comm returns rank i's COMM_WORLD handle.
func (w *World) Comm(i int) *Comm { return w.comms[i] }

// Size returns the world size.
func (w *World) Size() int { return len(w.comms) }

// Engine returns rank i's ADI engine (for statistics).
func (w *World) Engine(i int) *Engine { return w.engines[i] }

// SetMetrics installs per-rank protocol instruments on every engine
// (nil disables). It does not reach down into the transport — install
// metrics there separately if wanted.
func (w *World) SetMetrics(m *metrics.Registry) {
	for _, eng := range w.engines {
		eng.setMetrics(m)
	}
}

// SetTracer installs a span recorder on every engine (nil disables).
// Like SetMetrics it stops at the ADI layer; install the tracer on the
// transport separately (cluster.New wires both ends).
func (w *World) SetTracer(r *trace.Recorder) {
	for _, eng := range w.engines {
		eng.setTracer(r)
	}
}

// RunSPMD spawns one simulation process per rank, each executing body
// with its COMM_WORLD handle — the moral equivalent of mpirun.
func (w *World) RunSPMD(k *sim.Kernel, body func(p *sim.Proc, c *Comm)) {
	for i := range w.comms {
		c := w.comms[i]
		k.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) { body(p, c) })
	}
}

// Comm is a communicator as seen by one rank.
type Comm struct {
	eng   *Engine
	ctx   uint32
	group []int // communicator rank -> world rank
	rank  int   // my communicator rank
	seq   uint32
	// Release-tree re-plan state (select.go): the current plan epoch
	// and, at a collective root, the suspect mask the epoch was cut for.
	planEpoch    uint32
	lastPlanMask []byte
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

func (c *Comm) rankOfWorld(world int) int {
	for i, w := range c.group {
		if w == world {
			return i
		}
	}
	return -1
}

func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= len(c.group) {
		return ErrBadRank
	}
	return nil
}

// Isend starts a nonblocking standard-mode send of data to rank dst.
func (c *Comm) Isend(p *sim.Proc, dst, tag int, data []byte) (*Request, error) {
	return c.isend(p, dst, tag, data)
}

func (c *Comm) isend(p *sim.Proc, dst, tag int, data []byte) (*Request, error) {
	if err := c.checkRank(dst); err != nil {
		return nil, err
	}
	if tag < 0 && tag > -100 { // user tags are non-negative; -100.. are internal
		return nil, ErrBadTag
	}
	e := c.eng
	p.Delay(e.cfg.Costs.SendOverhead)
	world := c.group[dst]
	if part, ok := e.partition(); ok && (part.Minority || part.Unreachable(world)) {
		// Fenced: the destination is on the other side of a declared
		// ring partition (or this rank lost quorum). Fail before
		// committing billboard buffers — the peer is unreachable until
		// the fiber is spliced, not dead.
		return nil, e.partitionErr(part)
	}
	if e.peerDead(world) {
		// Fail before committing billboard buffers to a receiver the
		// detector already confirmed dead; a false verdict cannot reach
		// here (the confirmation window is calibrated against it).
		return nil, &DeadPeerError{Rank: world}
	}
	req := &Request{eng: e, isSend: true, ctx: c.ctx, tag: tag, dst: world, comm: c}
	if len(data) <= e.cfg.EagerMax {
		// The eager span covers envelope + chunks; the BBP posts they
		// cause adopt it as their parent via the ambient stack.
		span := e.tracer.BeginSpan(p.Now(), trace.MPI, e.ep.Rank(), "eager", 0, e.tracer.Parent(), "dst=%d tag=%d total=%d", world, tag, len(data))
		e.tracer.PushParent(span)
		env := envelope{kind: kEager, ctx: c.ctx, tag: int32(tag), total: uint32(len(data))}
		e.sendControl(p, world, env)
		e.sendChunks(p, world, data)
		e.tracer.PopParent()
		e.tracer.EndSpan(p.Now(), trace.MPI, e.ep.Rank(), "eager-end", span, 0, "total=%d", len(data))
		e.stats.EagerSent++
		e.im.eagerSent.Inc()
		req.done = true
		return req, nil
	}
	// Rendezvous: keep a reference to the payload until CTS arrives. The
	// span stays open across the RTS/CTS round trip and is closed by
	// handleCTS once the data chunks have been pushed.
	id := e.nextReq
	e.nextReq++
	req.id = id
	req.data = data
	e.pendSends[id] = req
	req.span = e.tracer.BeginSpan(p.Now(), trace.MPI, e.ep.Rank(), "rndv", 0, e.tracer.Parent(), "dst=%d tag=%d total=%d", world, tag, len(data))
	env := envelope{kind: kRTS, ctx: c.ctx, tag: int32(tag), total: uint32(len(data)), reqID: id}
	e.tracer.PushParent(req.span)
	e.sendControl(p, world, env)
	e.tracer.PopParent()
	e.stats.RndvSent++
	e.im.rndvSent.Inc()
	return req, nil
}

// Irecv posts a nonblocking receive from src (or AnySource) with tag (or
// AnyTag) into buf.
func (c *Comm) Irecv(p *sim.Proc, src, tag int, buf []byte) (*Request, error) {
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return nil, err
		}
	}
	e := c.eng
	p.Delay(e.cfg.Costs.RecvOverhead)
	req := &Request{eng: e, ctx: c.ctx, src: src, tag: tag, buf: buf, comm: c}
	p.Delay(e.cfg.Costs.MatchCost)
	if m := e.matchUnexpected(req); m != nil {
		switch m.env.kind {
		case kEager:
			if int(m.env.total) > len(buf) {
				e.complete(req, m.src, m.env, ErrTruncated)
				return req, nil
			}
			// Unpack from the unexpected staging buffer: the extra copy
			// the eager protocol pays when the receive comes late.
			p.Delay(sim.Duration(m.env.total) * e.cfg.Costs.CopyPerByte)
			copy(buf, m.data)
			e.complete(req, m.src, m.env, nil)
		case kRTS:
			e.sendCTS(p, m.src, m.env, req)
		default:
			panic("mpi: unexpected queue holds non-message")
		}
		return req, nil
	}
	e.posted = append(e.posted, req)
	return req, nil
}

// Wait blocks until req completes and returns its status.
func (c *Comm) Wait(p *sim.Proc, req *Request) (Status, error) {
	return c.eng.wait(p, req)
}

// Test progresses once and reports whether req completed.
func (c *Comm) Test(p *sim.Proc, req *Request) (bool, Status, error) {
	if !req.done {
		c.eng.progressOnce(p)
	}
	if req.done {
		return true, req.status, req.err
	}
	return false, Status{}, nil
}

// Waitall blocks until every request completes.
func (c *Comm) Waitall(p *sim.Proc, reqs []*Request) error {
	for _, r := range reqs {
		if _, err := c.eng.wait(p, r); err != nil {
			return err
		}
	}
	return nil
}

// Waitany blocks until some request completes and returns its index.
func (c *Comm) Waitany(p *sim.Proc, reqs []*Request) (int, Status, error) {
	if len(reqs) == 0 {
		return -1, Status{}, ErrProtocol
	}
	deadline := sim.Time(-1)
	if c.eng.cfg.WaitTimeout > 0 {
		deadline = p.Now().Add(c.eng.cfg.WaitTimeout)
	}
	for {
		for i, r := range reqs {
			if r.done {
				return i, r.status, r.err
			}
		}
		c.eng.progressOnce(p)
		if deadline >= 0 && p.Now() > deadline {
			return -1, Status{}, ErrTimeout
		}
	}
}

// Probe blocks until a matching message is available without receiving
// it (MPI_Probe); the returned status gives its source, tag and length.
func (c *Comm) Probe(p *sim.Proc, src, tag int) (Status, error) {
	deadline := sim.Time(-1)
	if c.eng.cfg.WaitTimeout > 0 {
		deadline = p.Now().Add(c.eng.cfg.WaitTimeout)
	}
	for {
		if ok, st := c.Iprobe(p, src, tag); ok {
			return st, nil
		}
		if deadline >= 0 && p.Now() > deadline {
			return Status{}, ErrTimeout
		}
	}
}

// Send is a blocking standard-mode send.
func (c *Comm) Send(p *sim.Proc, dst, tag int, data []byte) error {
	req, err := c.isend(p, dst, tag, data)
	if err != nil {
		return err
	}
	_, err = c.eng.wait(p, req)
	return err
}

// Recv is a blocking receive.
func (c *Comm) Recv(p *sim.Proc, src, tag int, buf []byte) (Status, error) {
	req, err := c.Irecv(p, src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	return c.eng.wait(p, req)
}

// Sendrecv exchanges messages with possibly different partners without
// deadlocking.
func (c *Comm) Sendrecv(p *sim.Proc, dst, sendTag int, data []byte, src, recvTag int, buf []byte) (Status, error) {
	rreq, err := c.Irecv(p, src, recvTag, buf)
	if err != nil {
		return Status{}, err
	}
	sreq, err := c.isend(p, dst, sendTag, data)
	if err != nil {
		return Status{}, err
	}
	if _, err := c.eng.wait(p, sreq); err != nil {
		return Status{}, err
	}
	return c.eng.wait(p, rreq)
}

// Iprobe polls for a matching message without receiving it.
func (c *Comm) Iprobe(p *sim.Proc, src, tag int) (bool, Status) {
	c.eng.progressOnce(p)
	for _, m := range c.eng.unexpect {
		if m.env.ctx != c.ctx {
			continue
		}
		cr := c.rankOfWorld(m.src)
		if src != AnySource && src != cr {
			continue
		}
		if tag != AnyTag && tag != int(m.env.tag) {
			continue
		}
		return true, Status{Source: cr, Tag: int(m.env.tag), Len: int(m.env.total)}
	}
	return false, Status{}
}

// Dup creates a communicator with the same group and a fresh context.
// Like every communicator constructor, all members must call it in the
// same order (MPICH-1's synchronized context-counter scheme).
func (c *Comm) Dup() *Comm {
	ctx := c.eng.nextCtx
	c.eng.nextCtx++
	nc := &Comm{eng: c.eng, ctx: ctx, group: append([]int(nil), c.group...), rank: c.rank}
	c.eng.comms[ctx] = nc
	return nc
}

// Split partitions the communicator by color; ranks within each new
// communicator are ordered by (key, old rank). Every member must call
// Split collectively. A negative color returns nil (MPI_UNDEFINED).
func (c *Comm) Split(p *sim.Proc, color, key int) (*Comm, error) {
	// Allgather (color, key) over point-to-point.
	mine := make([]byte, 8)
	binary.LittleEndian.PutUint32(mine[0:], uint32(int32(color)))
	binary.LittleEndian.PutUint32(mine[4:], uint32(int32(key)))
	all := make([]byte, 8*c.Size())
	if err := c.allgatherTag(p, tagSplit, mine, all); err != nil {
		return nil, err
	}
	ctx := c.eng.nextCtx
	c.eng.nextCtx++
	if color < 0 {
		return nil, nil
	}
	type member struct{ key, oldRank int }
	var members []member
	for r := 0; r < c.Size(); r++ {
		col := int(int32(binary.LittleEndian.Uint32(all[8*r:])))
		k := int(int32(binary.LittleEndian.Uint32(all[8*r+4:])))
		if col == color {
			members = append(members, member{k, r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].oldRank < members[j].oldRank
	})
	nc := &Comm{eng: c.eng, ctx: ctx}
	for i, m := range members {
		nc.group = append(nc.group, c.group[m.oldRank])
		if m.oldRank == c.rank {
			nc.rank = i
		}
	}
	c.eng.comms[ctx] = nc
	return nc, nil
}
