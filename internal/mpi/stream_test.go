package mpi_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/liveness"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/spin"
)

// streamCluster builds a flat-ring SCRAMNet testbed with the streaming
// allreduce extension enabled and an MPI world on top.
func streamCluster(t testing.TB, nodes int, live *liveness.Config, faults *fault.Script) (*sim.Kernel, *cluster.Cluster, *mpi.World) {
	t.Helper()
	k := sim.NewKernel()
	bbp := core.DefaultConfig()
	bbp.Stream.Enabled = true
	c, err := cluster.New(k, cluster.Options{
		Nodes:    nodes,
		Net:      cluster.SCRAMNet,
		BBP:      &bbp,
		Liveness: live,
		Faults:   faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, c, mpi.NewWorld(c.Endpoints, mpi.DefaultConfig())
}

func TestAllreduceWFastPath(t *testing.T) {
	const nodes = 8
	k, c, w := streamCluster(t, nodes, nil, nil)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		send := make([]byte, 16)
		for lane := 0; lane < 4; lane++ {
			putU32(send[4*lane:], uint32(me+1)<<uint(lane))
		}
		recv := make([]byte, 16)
		if err := cm.AllreduceW(p, spin.OpSumU32, send, recv); err != nil {
			t.Errorf("rank %d: %v", me, err)
			return
		}
		for lane := 0; lane < 4; lane++ {
			want := uint32(0)
			for r := 0; r < nodes; r++ {
				want += uint32(r+1) << uint(lane)
			}
			if got := getU32(recv[4*lane:]); got != want {
				t.Errorf("rank %d lane %d: got %d want %d", me, lane, got, want)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		st := w.Engine(i).Stats()
		if st.StreamAllreduces != 1 || st.StreamFallbacks != 0 {
			t.Errorf("rank %d: want 1 fast-path allreduce, stats %+v", i, st)
		}
	}
	// The handler cost model must have charged cycles somewhere on the
	// ring — the acceptance gate's "non-zero spin.handler_cycles".
	cycles := int64(0)
	for i := 0; i < nodes; i++ {
		cycles += c.Ring.NIC(i).HandlerStats().HandlerCycles
	}
	if cycles == 0 {
		t.Error("fast path ran but no handler cycles were charged")
	}
}

// TestAllreduceWMatchesTree: the fast path and the software tree must
// produce byte-identical results for every ring op (the fallback uses
// RingOpFunc over the same 32-bit lanes).
func TestAllreduceWMatchesTree(t *testing.T) {
	const nodes = 5
	for _, op := range []spin.RingOp{spin.OpSumU32, spin.OpMaxU32, spin.OpMinU32, spin.OpBOR, spin.OpBAND, spin.OpBXOR} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			k, _, w := streamCluster(t, nodes, nil, nil)
			w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
				me := cm.Rank()
				send := make([]byte, 12)
				for lane := 0; lane < 3; lane++ {
					putU32(send[4*lane:], uint32(me*2654435761)^uint32(lane*40503))
				}
				fast := make([]byte, 12)
				tree := make([]byte, 12)
				if err := cm.AllreduceW(p, op, send, fast); err != nil {
					t.Errorf("rank %d fast: %v", me, err)
					return
				}
				if err := cm.Allreduce(p, mpi.RingOpFunc(op), send, tree); err != nil {
					t.Errorf("rank %d tree: %v", me, err)
					return
				}
				if !bytes.Equal(fast, tree) {
					t.Errorf("rank %d: fast %x != tree %x", me, fast, tree)
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllreduceWOversizeUsesTree: vectors past StreamMax take the tree
// on every rank without touching the stream round counters.
func TestAllreduceWOversizeUsesTree(t *testing.T) {
	const nodes = 4
	k, _, w := streamCluster(t, nodes, nil, nil)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		send := make([]byte, core.DefaultStreamMax+64)
		for i := 0; i+4 <= len(send); i += 4 {
			putU32(send[i:], uint32(me+i))
		}
		recv := make([]byte, len(send))
		if err := cm.AllreduceW(p, spin.OpSumU32, send, recv); err != nil {
			t.Errorf("rank %d: %v", me, err)
			return
		}
		want := uint32(0)
		for r := 0; r < nodes; r++ {
			want += uint32(r)
		}
		if got := getU32(recv); got != want {
			t.Errorf("rank %d lane 0: got %d want %d", me, got, want)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if st := w.Engine(i).Stats(); st.StreamAllreduces != 0 || st.StreamFallbacks != 0 {
			t.Errorf("rank %d: oversize vector entered the stream path: %+v", i, st)
		}
	}
}

// TestAllreduceWSuspectDegradesToTree reproduces the E12 degradation
// scenario: one rank's NIC drops off the ring long enough to be
// suspected, then is repaired. The fast path must decline on suspicion
// and the tree must still complete — the suspected rank is alive.
func TestAllreduceWSuspectDegradesToTree(t *testing.T) {
	const nodes = 6
	live := liveness.DefaultConfig()
	script := &fault.Script{
		Seed: 1,
		Actions: []fault.Action{
			{At: sim.Time(0).Add(1 * sim.Millisecond), Kind: fault.NodeFail, Node: 4},
			{At: sim.Time(0).Add(1700 * sim.Microsecond), Kind: fault.NodeRepair, Node: 4},
		},
	}
	k, _, w := streamCluster(t, nodes, &live, script)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		// Start the collective while rank 4 is suspect (suspected at
		// 1.5ms, repaired at 1.7ms, cleared when its next heartbeat
		// circulates at ~1.8ms).
		p.Delay(1720 * sim.Microsecond)
		send := make([]byte, 8)
		putU32(send, uint32(me+1))
		putU32(send[4:], uint32(100*me))
		recv := make([]byte, 8)
		if err := cm.AllreduceW(p, spin.OpSumU32, send, recv); err != nil {
			t.Errorf("rank %d: %v", me, err)
			return
		}
		want0, want1 := uint32(0), uint32(0)
		for r := 0; r < nodes; r++ {
			want0 += uint32(r + 1)
			want1 += uint32(100 * r)
		}
		if getU32(recv) != want0 || getU32(recv[4:]) != want1 {
			t.Errorf("rank %d: got %x", me, recv)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	falls := int64(0)
	for i := 0; i < nodes; i++ {
		falls += w.Engine(i).Stats().StreamFallbacks
	}
	if falls == 0 {
		t.Fatal("expected the fast path to degrade to the tree on suspicion")
	}
	for i := 0; i < nodes; i++ {
		if st := w.Engine(i).Stats(); st.StreamAllreduces != 0 {
			t.Errorf("rank %d: fast path claimed success with a suspect member: %+v", i, st)
		}
	}
}

// TestAllreduceWNoStreamSubstrate: on a substrate without the
// extension (plain BBP config), AllreduceW transparently runs the tree.
func TestAllreduceWNoStreamSubstrate(t *testing.T) {
	const nodes = 3
	k := sim.NewKernel()
	c, err := cluster.New(k, cluster.Options{Nodes: nodes, Net: cluster.SCRAMNet})
	if err != nil {
		t.Fatal(err)
	}
	w := mpi.NewWorld(c.Endpoints, mpi.DefaultConfig())
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		send := make([]byte, 4)
		putU32(send, uint32(me+7))
		recv := make([]byte, 4)
		if err := cm.AllreduceW(p, spin.OpSumU32, send, recv); err != nil {
			t.Errorf("rank %d: %v", me, err)
			return
		}
		if got := getU32(recv); got != 7+8+9 {
			t.Errorf("rank %d: got %d want %d", me, got, 7+8+9)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if st := w.Engine(i).Stats(); st.StreamAllreduces != 0 || st.StreamFallbacks != 0 {
			t.Errorf("rank %d: stream stats on a non-stream substrate: %+v", i, st)
		}
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
