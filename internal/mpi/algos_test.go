package mpi_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestBarrierDisseminationSynchronizes(t *testing.T) {
	for _, nodes := range []int{3, 4, 7, 8} {
		nodes := nodes
		k := sim.NewKernel()
		_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, nodes, false)
		if err != nil {
			t.Fatal(err)
		}
		var lastArrive sim.Time
		exits := make([]sim.Time, nodes)
		w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
			p.Delay(sim.Duration(c.Rank()*137) * sim.Microsecond)
			if p.Now() > lastArrive {
				lastArrive = p.Now()
			}
			if err := c.BarrierDissemination(p); err != nil {
				t.Error(err)
				return
			}
			exits[c.Rank()] = p.Now()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		for r, e := range exits {
			if e < lastArrive {
				t.Errorf("%d nodes: rank %d exited at %d before last arrival %d", nodes, r, e, lastArrive)
			}
		}
	}
}

func sumInt64s(t *testing.T, c *mpi.Comm, p *sim.Proc, algo func(*sim.Proc, mpi.Op, []byte, []byte) error, vals int) []int64 {
	t.Helper()
	send := make([]byte, 8*vals)
	for i := 0; i < vals; i++ {
		binary.LittleEndian.PutUint64(send[8*i:], uint64(int64((c.Rank()+1)*(i+1))))
	}
	recv := make([]byte, 8*vals)
	if err := algo(p, mpi.SumI64, send, recv); err != nil {
		t.Error(err)
		return nil
	}
	out := make([]int64, vals)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(recv[8*i:]))
	}
	return out
}

func TestAllreduceRDMatchesTreeAllSizes(t *testing.T) {
	// Recursive doubling must agree with reduce+bcast on power-of-two
	// and odd communicator sizes alike.
	for _, nodes := range []int{2, 3, 4, 5, 6, 8} {
		nodes := nodes
		k := sim.NewKernel()
		_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, nodes, false)
		if err != nil {
			t.Fatal(err)
		}
		w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
			allreduce := func(algo mpi.Algorithm) func(*sim.Proc, mpi.Op, []byte, []byte) error {
				return func(p *sim.Proc, op mpi.Op, s, r []byte) error {
					return c.Allreduce(p, op, s, r, mpi.WithAlgorithm(algo))
				}
			}
			rd := sumInt64s(t, c, p, allreduce(mpi.Dissemination), 4)
			tree := sumInt64s(t, c, p, allreduce(mpi.Tree), 4)
			if rd == nil || tree == nil {
				return
			}
			// Expected: sum over ranks of (r+1)*(i+1).
			base := int64(0)
			for r := 0; r < nodes; r++ {
				base += int64(r + 1)
			}
			for i := range rd {
				want := base * int64(i+1)
				if rd[i] != want || tree[i] != want {
					t.Errorf("%d nodes elem %d: rd=%d tree=%d want=%d", nodes, i, rd[i], tree[i], want)
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceScatterBlocks(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		n := c.Size()
		send := make([]byte, 8*n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(send[8*i:], uint64(int64(c.Rank()+10*i)))
		}
		recv := make([]byte, 8)
		if err := c.ReduceScatter(p, mpi.SumI64, send, recv); err != nil {
			t.Error(err)
			return
		}
		got := int64(binary.LittleEndian.Uint64(recv))
		// Block r sums (rank + 10*r) over ranks = (0+1+2+3) + 4*10*r.
		want := int64(6 + 40*c.Rank())
		if got != want {
			t.Errorf("rank %d: got %d want %d", c.Rank(), got, want)
		}
	})
}

func TestReduceScatterValidation(t *testing.T) {
	run(t, cluster.SCRAMNet, 4, false, func(p *sim.Proc, c *mpi.Comm) {
		if c.Rank() != 0 {
			return
		}
		if err := c.ReduceScatter(p, mpi.SumI64, make([]byte, 10), make([]byte, 8)); err == nil {
			t.Error("non-divisible send buffer accepted")
		}
		if err := c.ReduceScatter(p, mpi.SumI64, make([]byte, 32), make([]byte, 4)); err == nil {
			t.Error("undersized receive buffer accepted")
		}
	})
}

func TestDisseminationVsTreeLatency(t *testing.T) {
	// On a root-bottlenecked medium the dissemination barrier's extra
	// parallelism can win for larger node counts; at minimum both must
	// synchronize and stay within a small factor of each other.
	measure := func(dissem bool, nodes int) float64 {
		k := sim.NewKernel()
		_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, nodes, false)
		if err != nil {
			t.Fatal(err)
		}
		var last sim.Time
		w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
			var err error
			if dissem {
				err = c.BarrierDissemination(p)
			} else {
				err = c.BarrierTree(p)
			}
			if err != nil {
				t.Error(err)
				return
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return last.Sub(0).Microseconds()
	}
	tree, diss := measure(false, 8), measure(true, 8)
	if ratio := diss / tree; ratio < 0.3 || ratio > 3.0 {
		t.Errorf("8-node dissemination %.1fµs vs tree %.1fµs: implausible ratio", diss, tree)
	}
}
