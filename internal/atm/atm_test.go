package atm

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCellsFor(t *testing.T) {
	cases := map[int]int{
		0:    1, // trailer alone occupies one cell
		1:    1,
		40:   1, // 40+8 = 48
		41:   2,
		88:   2, // 88+8 = 96
		1000: 21,
	}
	for n, want := range cases {
		if got := CellsFor(n); got != want {
			t.Errorf("CellsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCellsForProperty(t *testing.T) {
	f := func(n uint16) bool {
		c := CellsFor(int(n))
		// The PDU with trailer must fit, and c-1 cells must not.
		return c*48 >= int(n)+8 && (c-1)*48 < int(n)+8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPDUDelivery(t *testing.T) {
	k := sim.NewKernel()
	n, err := New(k, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 5000)
	sim.NewRNG(3).Bytes(payload)
	var got []byte
	n.SetHandler(3, func(src int, frame []byte) { got = frame })
	k.At(0, func() { n.Transmit(1, 3, payload) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("PDU corrupted in flight")
	}
	pdus, cells := n.Stats()
	if pdus != 1 || cells != int64(CellsFor(5000)) {
		t.Fatalf("stats = %d PDUs, %d cells", pdus, cells)
	}
}

func TestLatencyScalesWithCells(t *testing.T) {
	latency := func(payload int) sim.Duration {
		k := sim.NewKernel()
		n, _ := New(k, DefaultConfig(2))
		var arrival sim.Time
		n.SetHandler(1, func(src int, frame []byte) { arrival = k.Now() })
		k.At(0, func() { n.Transmit(0, 1, make([]byte, payload)) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return arrival.Sub(0)
	}
	cfg := DefaultConfig(2)
	oneCell, threeCells := latency(10), latency(100)
	// Cell-pipelined switch: the PDU serializes once end to end.
	wantDelta := sim.Duration(CellsFor(100)-CellsFor(10)) * cfg.CellTime
	if got := threeCells - oneCell; got != wantDelta {
		t.Fatalf("latency delta = %d, want %d", got, wantDelta)
	}
}

func TestEffectivePayloadRate(t *testing.T) {
	// Sustained large-PDU throughput ≈ 48/53 of OC-3 ≈ 17.6 MB/s.
	k := sim.NewKernel()
	cfg := DefaultConfig(2)
	n, _ := New(k, cfg)
	const pduBytes = 9000
	const count = 50
	var last sim.Time
	n.SetHandler(1, func(src int, frame []byte) { last = k.Now() })
	k.At(0, func() {
		for i := 0; i < count; i++ {
			n.Transmit(0, 1, make([]byte, pduBytes))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	mbps := float64(pduBytes*count) / (float64(last) / 1e9) / 1e6
	if mbps < 15.5 || mbps > 18.5 {
		t.Fatalf("ATM payload rate %.2f MB/s, want ≈17.6", mbps)
	}
}

func TestOversizePDUPanics(t *testing.T) {
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic above MTU")
		}
	}()
	n.Transmit(0, 1, make([]byte, 9181))
}
