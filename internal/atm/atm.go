// Package atm models an OC-3 ATM LAN: per-host 155.52 Mb/s links into a
// cell switch, with AAL5 segmentation and reassembly in the NIC.
//
// An AAL5 PDU carries the payload plus an 8-byte trailer, padded to a
// multiple of 48 bytes; each 48-byte chunk travels in one 53-byte cell.
// At 155.52 Mb/s one 53-byte cell serializes in ≈2.73 µs, so the
// effective payload rate is ≈17.6 MB/s — higher than Fast Ethernet,
// which is what lets ATM overtake SCRAMNet at a smaller message size in
// Figure 2 despite its higher per-message latency. AAL5 CRC-32 is
// computed by the SAR hardware, not the host, so the TCP-lite profile
// for ATM charges no software checksum.
package atm

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/xport"
)

// Config describes the ATM LAN.
type Config struct {
	Nodes int
	// MTU is the AAL5 payload limit handed to the fabric; 9180 is the
	// classical IP-over-ATM MTU.
	MTU int
	// CellTime is the serialization time of one 53-byte cell.
	CellTime sim.Duration
	// PropDelay is fiber propagation per link.
	PropDelay sim.Duration
	// SwitchLatency is the per-PDU switch traversal cost (cell
	// pipelining folded into one figure).
	SwitchLatency sim.Duration
	// SARCost is the NIC's per-PDU segmentation/reassembly overhead.
	SARCost sim.Duration
}

// DefaultConfig returns an OC-3 LAN.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		MTU:           9180,
		CellTime:      2726 * sim.Nanosecond,
		PropDelay:     500 * sim.Nanosecond,
		SwitchLatency: 7 * sim.Microsecond,
		SARCost:       3 * sim.Microsecond,
	}
}

// Network is the ATM LAN; it implements xport.Fabric.
type Network struct {
	k        *sim.Kernel
	cfg      Config
	up, down []*sim.Server
	handlers []func(src int, frame []byte)

	pdus, cells int64
}

// New builds the LAN on kernel k.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("atm: need at least 2 nodes, got %d", cfg.Nodes)
	}
	n := &Network{k: k, cfg: cfg, handlers: make([]func(int, []byte), cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		n.up = append(n.up, sim.NewServer(k))
		n.down = append(n.down, sim.NewServer(k))
	}
	return n, nil
}

// Nodes returns the host count.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// MTU returns the AAL5 payload limit.
func (n *Network) MTU() int { return n.cfg.MTU }

// SetHandler installs node's PDU delivery callback.
func (n *Network) SetHandler(node int, fn func(src int, frame []byte)) {
	n.handlers[node] = fn
}

// CellsFor returns the number of cells an AAL5 PDU of n payload bytes
// occupies: payload + 8-byte trailer, padded to a 48-byte multiple.
func CellsFor(n int) int { return (n + 8 + 47) / 48 }

// Transmit sends one AAL5 PDU src→switch→dst.
func (n *Network) Transmit(src, dst int, frame []byte) {
	if len(frame) > n.cfg.MTU {
		panic(fmt.Sprintf("atm: %d-byte PDU exceeds MTU %d", len(frame), n.cfg.MTU))
	}
	cells := CellsFor(len(frame))
	n.pdus++
	n.cells += int64(cells)
	wire := sim.Duration(cells) * n.cfg.CellTime
	cfg := n.cfg
	// The switch forwards cell by cell: the first cells of a long PDU
	// leave the switch while later cells are still arriving, so the PDU
	// is serialized once end to end, shifted by the per-cell pipeline.
	// The output link is occupied in parallel for contention purposes.
	n.down[dst].Serve(wire, nil)
	n.up[src].Serve(wire, func() {
		n.k.AfterKind(2*cfg.PropDelay+cfg.SwitchLatency+cfg.CellTime+cfg.SARCost, "fabric", func() {
			if h := n.handlers[dst]; h != nil {
				h(src, frame)
			}
		})
	})
}

// Stats returns PDUs and cells transmitted.
func (n *Network) Stats() (pdus, cells int64) { return n.pdus, n.cells }

var _ xport.Fabric = (*Network)(nil)
