# Build and verification tiers for the reproduction.
#
# tier-1 (`make test`) is the fast gate every change must keep green:
# a full build plus the unit/integration suite in virtual time.
#
# `make verify` is the release tier: vet, the full suite, the same
# suite under the Go race detector, and the internal/mpi coverage
# floor. The simulation kernel hands a
# single execution token between cooperative Procs, so simulated code
# is race-clean by construction — the race run exists to prove that
# claim stays true (kernel internals, test goroutines, and any future
# real-concurrency helpers), not because simulated Procs could race.
#
# `make cover` writes an HTML coverage report to cover.html.

GO ?= go

.PHONY: all build test race vet lint cover covercheck verify figures bench sweep timeline soak clean

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Style tier: gofmt cleanliness plus vet. gofmt -l prints offending
# files; any output fails the tier so an unformatted file cannot land.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@echo "lint green: gofmt + vet clean"

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
	$(GO) tool cover -html=cover.out -o cover.html
	@echo "wrote cover.html"

# Per-package coverage floor for the protocol engine: the rendezvous
# conformance/fault/edge batteries (ISSUE 6) and the collective
# liveness-degradation battery (ISSUE 9) hold internal/mpi at 86%+
# statement coverage; the floor sits just below so ordinary refactors
# pass while a PR that lands uncovered protocol paths fails loudly here
# instead of rotting silently.
MPI_COVER_FLOOR := 85.0
# The in-network handler engine (ISSUE 7) carries the same discipline:
# the spin package's verdict/budget/rollback semantics are what the ring
# integration and the E12 figures rest on.
SPIN_COVER_FLOOR := 80.0
# The observability substrate (ISSUE 8): the trace recorder's sampler /
# capacity drop split and the metrics registry (including the profiler
# publishing path) are what MayHaveDroppedMsg's truthfulness and the
# sweep trajectory rest on. Both sit above 90% today; the floors leave
# refactoring room.
TRACE_COVER_FLOOR := 85.0
METRICS_COVER_FLOOR := 85.0
# The partition-tolerance machinery (ISSUE 10): the detector's
# cut-corroborated partition declaration, quorum election, and
# fence/heal/resync transitions sit in internal/liveness (93% today),
# and the scripted fault injection they are proven against — including
# the link cut/splice actions and the build-time schedule validator —
# in internal/fault (88% today).
LIVENESS_COVER_FLOOR := 85.0
FAULT_COVER_FLOOR := 80.0

covercheck: build
	@$(GO) test -coverprofile=.cover.mpi.out ./internal/mpi > /dev/null
	@pct=$$($(GO) tool cover -func=.cover.mpi.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	rm -f .cover.mpi.out; \
	if awk "BEGIN {exit !($$pct >= $(MPI_COVER_FLOOR))}"; then \
		echo "covercheck green: internal/mpi statement coverage $$pct% (floor $(MPI_COVER_FLOOR)%)"; \
	else \
		echo "internal/mpi statement coverage $$pct% fell below the $(MPI_COVER_FLOOR)% floor"; \
		exit 1; \
	fi
	@$(GO) test -coverprofile=.cover.spin.out ./internal/spin > /dev/null
	@pct=$$($(GO) tool cover -func=.cover.spin.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	rm -f .cover.spin.out; \
	if awk "BEGIN {exit !($$pct >= $(SPIN_COVER_FLOOR))}"; then \
		echo "covercheck green: internal/spin statement coverage $$pct% (floor $(SPIN_COVER_FLOOR)%)"; \
	else \
		echo "internal/spin statement coverage $$pct% fell below the $(SPIN_COVER_FLOOR)% floor"; \
		exit 1; \
	fi
	@$(GO) test -coverprofile=.cover.trace.out ./internal/trace > /dev/null
	@pct=$$($(GO) tool cover -func=.cover.trace.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	rm -f .cover.trace.out; \
	if awk "BEGIN {exit !($$pct >= $(TRACE_COVER_FLOOR))}"; then \
		echo "covercheck green: internal/trace statement coverage $$pct% (floor $(TRACE_COVER_FLOOR)%)"; \
	else \
		echo "internal/trace statement coverage $$pct% fell below the $(TRACE_COVER_FLOOR)% floor"; \
		exit 1; \
	fi
	@$(GO) test -coverprofile=.cover.metrics.out ./internal/metrics > /dev/null
	@pct=$$($(GO) tool cover -func=.cover.metrics.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	rm -f .cover.metrics.out; \
	if awk "BEGIN {exit !($$pct >= $(METRICS_COVER_FLOOR))}"; then \
		echo "covercheck green: internal/metrics statement coverage $$pct% (floor $(METRICS_COVER_FLOOR)%)"; \
	else \
		echo "internal/metrics statement coverage $$pct% fell below the $(METRICS_COVER_FLOOR)% floor"; \
		exit 1; \
	fi
	@$(GO) test -coverprofile=.cover.liveness.out ./internal/liveness > /dev/null
	@pct=$$($(GO) tool cover -func=.cover.liveness.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	rm -f .cover.liveness.out; \
	if awk "BEGIN {exit !($$pct >= $(LIVENESS_COVER_FLOOR))}"; then \
		echo "covercheck green: internal/liveness statement coverage $$pct% (floor $(LIVENESS_COVER_FLOOR)%)"; \
	else \
		echo "internal/liveness statement coverage $$pct% fell below the $(LIVENESS_COVER_FLOOR)% floor"; \
		exit 1; \
	fi
	@$(GO) test -coverprofile=.cover.fault.out ./internal/fault > /dev/null
	@pct=$$($(GO) tool cover -func=.cover.fault.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	rm -f .cover.fault.out; \
	if awk "BEGIN {exit !($$pct >= $(FAULT_COVER_FLOOR))}"; then \
		echo "covercheck green: internal/fault statement coverage $$pct% (floor $(FAULT_COVER_FLOOR)%)"; \
	else \
		echo "internal/fault statement coverage $$pct% fell below the $(FAULT_COVER_FLOOR)% floor"; \
		exit 1; \
	fi

verify: lint test race covercheck timeline soak
	@echo "verify tier green: lint + test + race + covercheck + timeline + soak"

# Robustness soak tier: the multi-seed fault + liveness battery under
# the race detector. Each seed generates a script mixing loss windows
# with node fail/repair cycles against a heartbeat-enabled cluster and
# live retry traffic, then requires every node's failure detector to
# have reconverged to an all-alive membership view with the traffic
# delivered intact. The false-positive property (loss windows alone
# never kill anyone) and the MPI dead-peer acceptance test run in the
# same package, as does the multi-seed partition/heal battery (ISSUE
# 10): scripted double cuts must fence the minority, complete majority
# collectives over the quorum, and deliver exactly-once across the
# heal.
soak: build
	$(GO) test -race -count=1 -run 'TestSoak|TestLossWindowsNeverKill|TestMPIBarrierDeadPeer|TestFlappingNode|TestPartitionSoak|TestMPIPartitionErrors|TestPartitionFenceAndHeal|TestSingleCutNoMPIErrors' ./internal/liveness
	@echo "soak tier green: liveness battery survives scripted faults under -race"

# Observability smoke tier: replay the E6 fault-sweep point at 15% loss
# with span tracing and snapshot streaming on, and require cmd/timeline
# to exit 0 with a non-empty retry/bus co-spike correlation table. This
# proves the whole pipeline — message-id propagation, span boundaries,
# the snapshot stream, the correlator — end to end on a lossy run.
timeline: build
	@$(GO) run ./cmd/timeline -mode sweep -rate 0.15 -seed 1999 > .timeline.tmp.out || \
		{ cat .timeline.tmp.out; rm -f .timeline.tmp.out; exit 1; }
	@grep -q "^correlation OK" .timeline.tmp.out || \
		{ cat .timeline.tmp.out; rm -f .timeline.tmp.out; \
		  echo "timeline tier: no correlation table in the output"; exit 1; }
	@rm -f .timeline.tmp.out
	@echo "timeline tier green: span/snapshot streams correlate retry storms with bus saturation"

# Regenerate every figure and table of the paper's §5, plus the
# fault-sweep extension.
figures:
	$(GO) run ./cmd/figures -faults

# Perf-regression tier: re-run the Figure 1–6 suite plus the throughput
# and bus-utilization sweeps (internal/bench/report) and fail on any
# drift from the checked-in BENCH_figures.json. The report is
# byte-stable by construction, so a diff means a latency or a counter
# actually moved; if the move is intended, regenerate the baseline with
# `$(GO) run ./cmd/figures -json BENCH_figures.json` so it lands in
# review alongside the change that caused it.
#
# The run itself also enforces the regression gates before writing
# anything: cmd/figures -json exits 1 unless burst-read polling cuts
# the 16-node 0-byte incast sink's full-round-trip poll reads by at
# least report.MinPollReductionPct (60%) versus per-word polling, the
# adaptive threshold converges on the 20 B E7 crossover, the E10
# failover delays stay inside the detector's windows, and the E11
# windowed pipelined rendezvous beats the sequential path at 64 KiB by
# at least report.MinRndvImprovementPct — so a regression in any of
# them cannot silently regenerate itself into a new baseline.
bench: build sweep
	$(GO) run ./cmd/figures -json .bench.tmp.json
	@if diff -u BENCH_figures.json .bench.tmp.json; then \
		rm -f .bench.tmp.json; \
		echo "bench tier green: BENCH_figures.json matches the simulated testbed"; \
	else \
		rm -f .bench.tmp.json; \
		echo "BENCH_figures.json drifted — if intended, regenerate with:"; \
		echo "  $(GO) run ./cmd/figures -json BENCH_figures.json"; \
		exit 1; \
	fi

# Continuous-performance tier: re-run the OSU-style sweep matrix
# (internal/bench/sweep), gate it against the trajectory history, and
# fail on any drift from the checked-in BENCH_sweep.json. The run itself
# also applies the least-squares trend gate over BENCH_trajectory.jsonl
# extended with this run — a sustained drift across runs fails even when
# each individual run sits inside golden-file tolerance. The second step
# is the gate's own self-test: inject a synthetic +2%/run drift onto the
# real history and require the gate to catch it (exit code 1 — anything
# else, including "missed", fails the tier).
#
# Record a real run into the trajectory (one line per landed change) with:
#   $(GO) run ./cmd/sweep -matrix -trajectory BENCH_trajectory.jsonl \
#     -append -describe "$$(git describe --always)"
sweep: build
	$(GO) run ./cmd/sweep -json .sweep.tmp.json -trajectory BENCH_trajectory.jsonl
	@if diff -u BENCH_sweep.json .sweep.tmp.json; then \
		rm -f .sweep.tmp.json; \
	else \
		rm -f .sweep.tmp.json; \
		echo "BENCH_sweep.json drifted — if intended, regenerate with:"; \
		echo "  $(GO) run ./cmd/sweep -json BENCH_sweep.json -trajectory BENCH_trajectory.jsonl"; \
		exit 1; \
	fi
	@$(GO) run ./cmd/sweep -trajectory BENCH_trajectory.jsonl -inject-trend 2 > .sweep.gate.out 2>&1; \
	code=$$?; \
	if [ $$code -ne 1 ]; then \
		cat .sweep.gate.out; rm -f .sweep.gate.out; \
		echo "sweep tier: trend gate did not catch an injected +2%/run drift (exit $$code)"; \
		exit 1; \
	fi; \
	rm -f .sweep.gate.out
	@echo "sweep tier green: matrix matches BENCH_sweep.json; trend gate catches injected drift"

clean:
	rm -f cover.out cover.html .cover.mpi.out .cover.spin.out .cover.trace.out .cover.metrics.out \
		.bench.tmp.json .sweep.tmp.json .sweep.gate.out .timeline.tmp.out
