// Command sweep finds the SCRAMNet crossover sizes against every other
// network — the quantitative core of Figures 2 and 3 — and prints the
// extension studies: streaming bandwidth, collective scaling with
// cluster size, and the hierarchy-of-rings latency penalty.
//
// It is also the driver for the continuous-performance matrix
// (internal/bench/sweep): -matrix runs the OSU-style latency /
// bandwidth / message-rate grid, -json writes the byte-stable
// BENCH_sweep.json document, -trajectory names the BENCH_trajectory.jsonl
// history that the least-squares trend gate judges, and -append records
// this run into it. -inject-trend fabricates a synthetic drift on top of
// the history and exits nonzero when the gate catches it — the `make
// bench` self-test that proves the gate is alive.
//
// Usage:
//
//	sweep [-crossovers] [-bandwidth] [-scaling] [-hierarchy]  (default: all)
//	sweep -matrix [-reduced] [-json PATH] [-trajectory PATH]
//	      [-append -describe STR [-note STR]] [-profile]
//	sweep -trajectory PATH -inject-trend PCT
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/bench/sweep"
	"repro/internal/cluster"
	"repro/internal/prof"
	"repro/internal/sim"
)

func main() {
	cross := flag.Bool("crossovers", false, "crossover table only")
	bw := flag.Bool("bandwidth", false, "bandwidth sweep only")
	scaling := flag.Bool("scaling", false, "collective scaling only")
	hier := flag.Bool("hierarchy", false, "hierarchy study only")
	matrix := flag.Bool("matrix", false, "run the continuous-performance matrix instead of the studies")
	reduced := flag.Bool("reduced", false, "use the reduced matrix (quick smoke, not the committed baseline)")
	jsonPath := flag.String("json", "", "write the matrix document to this path (\"-\" for stdout); implies -matrix")
	trajPath := flag.String("trajectory", "", "trajectory history file (BENCH_trajectory.jsonl) for the trend gate")
	appendRec := flag.Bool("append", false, "append this run's summary record to -trajectory; implies -matrix")
	describe := flag.String("describe", "", "code identity for the appended record (git describe output)")
	note := flag.String("note", "", "free-form note for the appended record")
	injectTrend := flag.Float64("inject-trend", 0, "fabricate 5 records drifting PCT%/run onto the history and run the gate (no matrix run)")
	profile := flag.Bool("profile", false, "attach the kernel self-profiler and render the real-time cost attribution")
	startProf, stop := prof.Flags()
	flag.Parse()
	startProf()
	defer stop()

	if *injectTrend != 0 {
		exit(stop, runInjectTrend(*trajPath, *injectTrend))
	}
	if *matrix || *jsonPath != "" || *appendRec {
		exit(stop, runMatrix(*reduced, *jsonPath, *trajPath, *appendRec, *describe, *note, *profile))
	}
	all := !*cross && !*bw && !*scaling && !*hier

	if all || *cross {
		fmt.Println("SCRAMNet crossover sizes (first size at which the other network wins)")
		fmt.Println("---------------------------------------------------------------------")
		scrAPI := func(n int) float64 { return bench.OneWayAPI(cluster.SCRAMNet, n) }
		scrMPI := func(n int) float64 { return bench.OneWayMPI(cluster.SCRAMNet, n) }
		type row struct {
			name  string
			net   cluster.Network
			paper string
		}
		apiRows := []row{
			{"Fast Ethernet (TCP)", cluster.FastEthernet, "several thousand B"},
			{"ATM (TCP)", cluster.ATM, "~1000 B"},
			{"Myrinet API", cluster.MyrinetAPI, "~500 B"},
			{"Myrinet (TCP)", cluster.MyrinetTCP, "(not stated)"},
		}
		fmt.Printf("%-22s  %14s  %20s\n", "API layer vs", "measured", "paper")
		for _, r := range apiRows {
			net := r.net
			x := bench.Crossover(scrAPI, func(n int) float64 { return bench.OneWayAPI(net, n) }, 0, 16384, 256)
			fmt.Printf("%-22s  %12s B  %20s\n", r.name, fmtX(x), r.paper)
		}
		mpiRows := []row{
			{"Fast Ethernet (TCP)", cluster.FastEthernet, "~512 B"},
			{"ATM (TCP)", cluster.ATM, "~580 B"},
		}
		fmt.Printf("\n%-22s  %14s  %20s\n", "MPI layer vs", "measured", "paper")
		for _, r := range mpiRows {
			net := r.net
			x := bench.Crossover(scrMPI, func(n int) float64 { return bench.OneWayMPI(net, n) }, 0, 16384, 128)
			fmt.Printf("%-22s  %12s B  %20s\n", r.name, fmtX(x), r.paper)
		}
		fmt.Println()
	}

	if all || *bw {
		fmt.Println("Extension E4: the §7 hybrid subsystem (BBP ≤512B, Myrinet API above)")
		fmt.Println("---------------------------------------------------------------------")
		fmt.Printf("%8s  %14s  %14s  %14s\n", "bytes", "SCRAMNet", "Myrinet API", "hybrid")
		for _, n := range []int{4, 256, 1024, 8192} {
			fmt.Printf("%8d  %12.1fµs  %12.1fµs  %12.1fµs\n", n,
				bench.OneWayAPI(cluster.SCRAMNet, n),
				bench.OneWayAPI(cluster.MyrinetAPI, n),
				bench.OneWayAPI(cluster.Hybrid, n))
		}
		fmt.Println()
		fmt.Println("Extension E2: streaming bandwidth (32 back-to-back messages)")
		s := bench.FigBandwidth([]int{256, 1024, 4096, 16384, 65536})
		fmt.Printf("%8s", "bytes")
		for _, ser := range s {
			fmt.Printf("  %20s", ser.Label)
		}
		fmt.Println()
		for i := range s[0].X {
			fmt.Printf("%8d", s[0].X[i])
			for _, ser := range s {
				fmt.Printf("  %15.2f MB/s", ser.Y[i])
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if all || *scaling {
		fmt.Println("Extension E5: incast (N senders → 1 receiver, 256-byte messages)")
		fmt.Println("-----------------------------------------------------------------")
		fmt.Printf("%8s  %14s  %14s\n", "senders", "SCRAMNet", "Fast Ethernet")
		for _, s := range []int{1, 3, 7, 15} {
			fmt.Printf("%8d  %12.1fµs  %12.1fµs\n", s,
				bench.Incast(cluster.SCRAMNet, s, 256),
				bench.Incast(cluster.FastEthernet, s, 256))
		}
		fmt.Println()
		sizes := []int{2, 4, 8, 12, 16}
		m, tr := bench.BarrierScaling(sizes)
		bench.RenderScaling(os.Stdout, "Extension E1a: MPI_Barrier vs cluster size", []bench.Series{m, tr})
		m, tr = bench.BcastScaling(sizes, 256)
		bench.RenderScaling(os.Stdout, "Extension E1b: 256-byte MPI_Bcast vs cluster size", []bench.Series{m, tr})
	}

	if all || *hier {
		fmt.Println("Extension E3: hierarchy of rings (§2), 4-byte BBP one-way latency")
		fmt.Println("------------------------------------------------------------------")
		flat := bench.OneWayAPI(cluster.SCRAMNet, 4)
		fmt.Printf("%-36s  %8.2fµs\n", "flat 4-node ring", flat)
		for _, cfgCase := range []struct {
			leaves, hosts int
		}{{2, 2}, {2, 4}, {4, 4}} {
			us := bench.HierarchyPingPong(cfgCase.leaves, cfgCase.hosts, 4)
			fmt.Printf("%d leaves x %d hosts (farthest pair)      %8.2fµs\n",
				cfgCase.leaves, cfgCase.hosts, us)
		}
		fmt.Println()
	}
}

func fmtX(x int) string {
	if x < 0 {
		return "none ≤16K"
	}
	return fmt.Sprintf("%d", x)
}

// exit flushes the pprof profiles (os.Exit skips deferred calls) and
// terminates with the given status.
func exit(stop func(), code int) {
	stop()
	os.Exit(code)
}

// loadHistory reads the trajectory file, treating a missing file as an
// empty history (the first run of a fresh checkout has nothing yet).
func loadHistory(path string) ([]sweep.Record, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sweep.LoadTrajectory(f)
}

// runInjectTrend is the trend-gate self-test: extend the real history
// with 5 fabricated records drifting pct%/run in every metric's bad
// direction, then require the gate to catch it. Exits 1 when the gate
// fires (the caller negates this to assert the gate works) and 0 when
// the synthetic drift slipped through.
func runInjectTrend(trajPath string, pct float64) int {
	history, err := loadHistory(trajPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(history) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: -inject-trend needs at least one trajectory record to drift from")
		return 2
	}
	drift := sweep.SyntheticDrift(history[len(history)-1], 5, pct)
	if err := sweep.CheckTrend(append(history, drift...), sweep.DefaultTrendConfig()); err != nil {
		fmt.Printf("trend gate fired on injected %+.1f%%/run drift:\n  %v\n", pct, err)
		return 1
	}
	fmt.Printf("trend gate MISSED the injected %+.1f%%/run drift\n", pct)
	return 0
}

// runMatrix executes the continuous-performance matrix, gates it
// against the trajectory, writes the document, and optionally appends
// this run's record to the history.
func runMatrix(reduced bool, jsonPath, trajPath string, appendRec bool, describe, note string, profile bool) int {
	opts := sweep.DefaultOptions()
	if reduced {
		opts = sweep.ReducedOptions()
	}
	if profile {
		opts.Profiler = sim.NewProfiler()
	}
	rep := sweep.Run(opts)

	history, err := loadHistory(trajPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := rep.Check(history, sweep.DefaultTrendConfig()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	out := sweep.Marshal(rep)
	switch jsonPath {
	case "":
		renderMatrix(rep)
	case "-":
		os.Stdout.Write(out)
	default:
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	if appendRec {
		rec := sweep.Record{
			Schema:   sweep.Schema,
			Run:      len(history) + 1,
			Describe: describe,
			Note:     note,
			Metrics:  sweep.Summarize(rep),
		}
		f, err := os.OpenFile(trajPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if _, err := f.Write(sweep.MarshalRecord(rec)); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "appended run %d to %s\n", rec.Run, trajPath)
	}

	if profile {
		fmt.Println("\nkernel self-profile (host-clock attribution; zero virtual-time cost)")
		opts.Profiler.Render(os.Stdout)
	}
	return 0
}

// renderMatrix prints the grid as aligned text, one row per cell.
func renderMatrix(r sweep.Report) {
	fmt.Println("continuous-performance matrix (OSU-style latency / bandwidth / message rate)")
	fmt.Println("-----------------------------------------------------------------------------")
	for _, c := range r.Cells {
		fmt.Printf("%-14s r%-3d  lat:", c.Substrate, c.Ranks)
		for _, p := range c.LatencyUs {
			fmt.Printf(" %6dB %8.3fµs", p.Bytes, p.Value)
		}
		fmt.Printf("  bw:")
		for _, p := range c.BandwidthMBs {
			fmt.Printf(" %6dB %8.2fMB/s", p.Bytes, p.Value)
		}
		fmt.Printf("  rate: %.0f msg/s (%dB)\n", c.RateMsgS, c.RateBytes)
	}
}
