// Command sweep finds the SCRAMNet crossover sizes against every other
// network — the quantitative core of Figures 2 and 3 — and prints the
// extension studies: streaming bandwidth, collective scaling with
// cluster size, and the hierarchy-of-rings latency penalty.
//
// Usage:
//
//	sweep [-crossovers] [-bandwidth] [-scaling] [-hierarchy]  (default: all)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	cross := flag.Bool("crossovers", false, "crossover table only")
	bw := flag.Bool("bandwidth", false, "bandwidth sweep only")
	scaling := flag.Bool("scaling", false, "collective scaling only")
	hier := flag.Bool("hierarchy", false, "hierarchy study only")
	flag.Parse()
	all := !*cross && !*bw && !*scaling && !*hier

	if all || *cross {
		fmt.Println("SCRAMNet crossover sizes (first size at which the other network wins)")
		fmt.Println("---------------------------------------------------------------------")
		scrAPI := func(n int) float64 { return bench.OneWayAPI(cluster.SCRAMNet, n) }
		scrMPI := func(n int) float64 { return bench.OneWayMPI(cluster.SCRAMNet, n) }
		type row struct {
			name  string
			net   cluster.Network
			paper string
		}
		apiRows := []row{
			{"Fast Ethernet (TCP)", cluster.FastEthernet, "several thousand B"},
			{"ATM (TCP)", cluster.ATM, "~1000 B"},
			{"Myrinet API", cluster.MyrinetAPI, "~500 B"},
			{"Myrinet (TCP)", cluster.MyrinetTCP, "(not stated)"},
		}
		fmt.Printf("%-22s  %14s  %20s\n", "API layer vs", "measured", "paper")
		for _, r := range apiRows {
			net := r.net
			x := bench.Crossover(scrAPI, func(n int) float64 { return bench.OneWayAPI(net, n) }, 0, 16384, 256)
			fmt.Printf("%-22s  %12s B  %20s\n", r.name, fmtX(x), r.paper)
		}
		mpiRows := []row{
			{"Fast Ethernet (TCP)", cluster.FastEthernet, "~512 B"},
			{"ATM (TCP)", cluster.ATM, "~580 B"},
		}
		fmt.Printf("\n%-22s  %14s  %20s\n", "MPI layer vs", "measured", "paper")
		for _, r := range mpiRows {
			net := r.net
			x := bench.Crossover(scrMPI, func(n int) float64 { return bench.OneWayMPI(net, n) }, 0, 16384, 128)
			fmt.Printf("%-22s  %12s B  %20s\n", r.name, fmtX(x), r.paper)
		}
		fmt.Println()
	}

	if all || *bw {
		fmt.Println("Extension E4: the §7 hybrid subsystem (BBP ≤512B, Myrinet API above)")
		fmt.Println("---------------------------------------------------------------------")
		fmt.Printf("%8s  %14s  %14s  %14s\n", "bytes", "SCRAMNet", "Myrinet API", "hybrid")
		for _, n := range []int{4, 256, 1024, 8192} {
			fmt.Printf("%8d  %12.1fµs  %12.1fµs  %12.1fµs\n", n,
				bench.OneWayAPI(cluster.SCRAMNet, n),
				bench.OneWayAPI(cluster.MyrinetAPI, n),
				bench.OneWayAPI(cluster.Hybrid, n))
		}
		fmt.Println()
		fmt.Println("Extension E2: streaming bandwidth (32 back-to-back messages)")
		s := bench.FigBandwidth([]int{256, 1024, 4096, 16384, 65536})
		fmt.Printf("%8s", "bytes")
		for _, ser := range s {
			fmt.Printf("  %20s", ser.Label)
		}
		fmt.Println()
		for i := range s[0].X {
			fmt.Printf("%8d", s[0].X[i])
			for _, ser := range s {
				fmt.Printf("  %15.2f MB/s", ser.Y[i])
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if all || *scaling {
		fmt.Println("Extension E5: incast (N senders → 1 receiver, 256-byte messages)")
		fmt.Println("-----------------------------------------------------------------")
		fmt.Printf("%8s  %14s  %14s\n", "senders", "SCRAMNet", "Fast Ethernet")
		for _, s := range []int{1, 3, 7, 15} {
			fmt.Printf("%8d  %12.1fµs  %12.1fµs\n", s,
				bench.Incast(cluster.SCRAMNet, s, 256),
				bench.Incast(cluster.FastEthernet, s, 256))
		}
		fmt.Println()
		sizes := []int{2, 4, 8, 12, 16}
		m, tr := bench.BarrierScaling(sizes)
		bench.RenderScaling(os.Stdout, "Extension E1a: MPI_Barrier vs cluster size", []bench.Series{m, tr})
		m, tr = bench.BcastScaling(sizes, 256)
		bench.RenderScaling(os.Stdout, "Extension E1b: 256-byte MPI_Bcast vs cluster size", []bench.Series{m, tr})
	}

	if all || *hier {
		fmt.Println("Extension E3: hierarchy of rings (§2), 4-byte BBP one-way latency")
		fmt.Println("------------------------------------------------------------------")
		flat := bench.OneWayAPI(cluster.SCRAMNet, 4)
		fmt.Printf("%-36s  %8.2fµs\n", "flat 4-node ring", flat)
		for _, cfgCase := range []struct {
			leaves, hosts int
		}{{2, 2}, {2, 4}, {4, 4}} {
			us := bench.HierarchyPingPong(cfgCase.leaves, cfgCase.hosts, 4)
			fmt.Printf("%d leaves x %d hosts (farthest pair)      %8.2fµs\n",
				cfgCase.leaves, cfgCase.hosts, us)
		}
		fmt.Println()
	}
}

func fmtX(x int) string {
	if x < 0 {
		return "none ≤16K"
	}
	return fmt.Sprintf("%d", x)
}
