// Command anatomy traces one BillBoard Protocol message end to end and
// prints its timeline — the decomposition behind the paper's 7.8 µs
// 4-byte one-way latency: post, descriptor and flag writes, ring
// replication, polling detection, data read, acknowledgement.
//
// It then rebuilds the same decomposition a second way: per-layer costs
// derived from the metrics counters multiplied by the configured bus
// costs. The two breakdowns, the hardware/protocol Stats() counters and
// the metrics registry are all cross-checked against each other; any
// disagreement exits nonzero. The trace, the counters and the cost
// model must tell one story.
//
// Usage:
//
//	anatomy [-size 4] [-nodes 4] [-mcast] [-earlyack] [-profile]
//
// -profile installs the kernel self-profiler for the run and renders
// its per-event-kind real-time attribution. Profiling reads only the
// host clock: the decomposition cross-check still passing, plus the
// profiler's event total matching the kernel's own executed-event
// counter, proves it charged zero virtual time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pci"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	size := flag.Int("size", 4, "message payload bytes")
	nodes := flag.Int("nodes", 4, "ring size")
	mcast := flag.Bool("mcast", false, "broadcast to all nodes instead of unicast")
	recvany := flag.Bool("recvany", false, "receivers use RecvAny (exercises the burst-read poll sweep)")
	earlyack := flag.Bool("earlyack", false, "acknowledge posts at ring transit (in-network handler) instead of at host consume")
	tcap := flag.Int("tracecap", 4096, "trace ring-buffer capacity (0 = unbounded)")
	profile := flag.Bool("profile", false, "attach the kernel self-profiler and render the per-kind cost table")
	flag.Parse()

	k := sim.NewKernel()
	var profiler *sim.Profiler
	if *profile {
		profiler = sim.NewProfiler()
		k.SetProfiler(profiler)
	}
	ring, err := scramnet.New(k, scramnet.DefaultConfig(*nodes))
	if err != nil {
		log.Fatal(err)
	}
	ring.SetSingleWriterCheck(true)
	rec := trace.New()
	if *tcap > 0 {
		rec = trace.NewCapped(*tcap)
	}
	m := metrics.New()
	bcfg := core.DefaultConfig()
	bcfg.EarlyAck = *earlyack
	sys, err := core.New(ring, bcfg, core.WithTracer(rec), core.WithMetrics(m))
	if err != nil {
		log.Fatal(err)
	}
	ring.SetTracer(rec)
	ring.SetMetrics(m)

	eps := make([]*core.Endpoint, *nodes)
	for i := range eps {
		if eps[i], err = sys.Attach(i); err != nil {
			log.Fatal(err)
		}
	}

	recvs := []int{1}
	if *mcast {
		recvs = nil
		for i := 1; i < *nodes; i++ {
			recvs = append(recvs, i)
		}
	}
	var sent sim.Time
	var lastDone sim.Time
	k.Spawn("sender", func(p *sim.Proc) {
		p.Delay(10 * sim.Microsecond) // receivers already polling
		sent = p.Now()
		if *mcast {
			if err := eps[0].Mcast(p, recvs, make([]byte, *size)); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := eps[0].Send(p, 1, make([]byte, *size)); err != nil {
				log.Fatal(err)
			}
		}
	})
	for _, r := range recvs {
		r := r
		k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
			buf := make([]byte, *size+1)
			if *recvany {
				if _, _, err := eps[r].RecvAny(p, buf); err != nil {
					log.Fatal(err)
				}
			} else if _, err := eps[r].Recv(p, 0, buf); err != nil {
				log.Fatal(err)
			}
			if p.Now() > lastDone {
				lastDone = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	kind := "unicast"
	if *mcast {
		kind = fmt.Sprintf("%d-way broadcast", len(recvs))
	}
	fmt.Printf("anatomy of a %d-byte BBP %s on a %d-node ring\n\n", *size, kind, *nodes)
	rec.Render(os.Stdout)
	fmt.Printf("\none-way latency (send call to last consume): %s\n", lastDone.Sub(sent))
	fmt.Printf("ring packets injected: %d   applies: %d\n",
		rec.Count("inject"), rec.Count("apply"))
	if span, ok := rec.Span("post", "consume"); ok {
		fmt.Printf("post→consume span: %s\n", span)
	}

	// The capped recorder bounds memory; evictions are tolerable unless
	// they may have eaten events of the message under the microscope.
	if d := rec.Drops(); d > 0 {
		fmt.Printf("\ntrace ring buffer evicted %d event(s)\n", d)
		if rec.MayHaveDroppedMsg(trace.MsgID(0, 1)) {
			fmt.Println("evictions may cover the traced message — rerun with a larger -tracecap")
			os.Exit(1)
		}
	}

	if !crossCheck(rec, m, ring, eps, bcfg, sent, lastDone, *size, recvs) {
		fmt.Println("\ncross-check FAILED: trace, metrics and cost model disagree")
		os.Exit(1)
	}
	fmt.Println("\ncross-check OK: trace spans, metrics counters, Stats() and the")
	fmt.Println("bus cost model all agree on the decomposition above.")

	if profiler != nil {
		// Counter identity: every event the kernel executed was profiled,
		// and the cross-check above already proved the virtual timeline is
		// the unprofiled one — together, profiling cost zero virtual time.
		if profiler.TotalEvents() != k.Executed() {
			fmt.Printf("\nprofiler counted %d events but the kernel executed %d\n",
				profiler.TotalEvents(), k.Executed())
			os.Exit(1)
		}
		fmt.Printf("\nkernel self-profile (%d events, identical to the kernel's executed count)\n",
			profiler.TotalEvents())
		profiler.Render(os.Stdout)
	}
}

// eventTime returns the time of the first (last=false) or last
// (last=true) trace event with the given name on the given node.
func eventTime(rec *trace.Recorder, node int, name string, last bool) (sim.Time, bool) {
	var t sim.Time
	found := false
	for _, e := range rec.Events() {
		if e.Node != node || e.Name != name {
			continue
		}
		if !found || last {
			t = e.T
		}
		found = true
	}
	return t, found
}

// crossCheck derives the per-layer decomposition from the metrics
// counters times the configured bus costs, prints it next to the trace
// spans, and verifies that the trace, the metrics registry, the
// hardware/protocol Stats() counters and the cost model agree.
func crossCheck(rec *trace.Recorder, m *metrics.Registry, ring *scramnet.Network,
	eps []*core.Endpoint, bcfg core.Config, sent, lastDone sim.Time, size int, recvs []int) bool {
	snap := m.Snapshot()
	up := snap.Rollup()
	buscfg := ring.NIC(0).Bus().Config()
	ok := true
	fail := func(format string, args ...any) {
		fmt.Printf("MISMATCH: "+format+"\n", args...)
		ok = false
	}
	counter := func(name string, node int) int64 {
		v, _ := snap.Counter(name, node)
		return v
	}
	global := func(name string) int64 {
		v, _ := up.Counter(name, metrics.NodeGlobal)
		return v
	}

	// 1. Every trace event class must tally with its metrics counter.
	for _, pc := range []struct{ event, metric string }{
		{"inject", "ring.packets_injected"},
		{"apply", "ring.packets_applied"},
		{"post", "bbp.sends"},
		{"detect", "bbp.recvs"},
		{"consume", "bbp.recvs"},
		{"handler", "spin.handlers_run"},
		{"partition-fence", "liveness.partitions_detected"},
		{"partition-heal", "liveness.partition_heals"},
	} {
		if got, want := int64(rec.Count(pc.event)), global(pc.metric); got != want {
			fail("trace %q count %d != rollup %s %d", pc.event, got, pc.metric, want)
		}
	}
	if got, want := int64(rec.Count("flag-set")), global("bbp.sends")+global("bbp.mcast_sends"); got != want {
		fail("trace flag-set count %d != flag words written %d", got, want)
	}

	// 2. The metrics rollup must tally with the layers' own Stats().
	var nicSent, nicApplied int64
	for i := range eps {
		st := ring.NIC(i).Stats()
		nicSent += st.PacketsSent
		nicApplied += st.PacketsApplied
	}
	if nicSent != global("ring.packets_injected") {
		fail("NIC Stats say %d packets sent, metrics say %d", nicSent, global("ring.packets_injected"))
	}
	if nicApplied != global("ring.packets_applied") {
		fail("NIC Stats say %d packets applied, metrics say %d", nicApplied, global("ring.packets_applied"))
	}
	var hRun, hCycles, hTraps int64
	for i := range eps {
		hs := ring.NIC(i).HandlerStats()
		hRun += hs.HandlersRun
		hCycles += hs.HandlerCycles
		hTraps += hs.TrapsToHost
	}
	if hRun != global("spin.handlers_run") || hCycles != global("spin.handler_cycles") || hTraps != global("spin.traps_to_host") {
		fail("engine HandlerStats (run=%d cycles=%d traps=%d) disagree with spin.* metrics (%d/%d/%d)",
			hRun, hCycles, hTraps, global("spin.handlers_run"), global("spin.handler_cycles"), global("spin.traps_to_host"))
	}
	var epSent, epRecv, epPolls, epPollW, epBursts, epBurstW int64
	for _, e := range eps {
		st := e.Stats()
		epSent += st.Sent
		epRecv += st.Received
		epPolls += st.Polls
		epPollW += st.PollWords
		epBursts += st.BurstPolls
		epBurstW += st.BurstPollWords
	}
	if epSent != global("bbp.sends") || epRecv != global("bbp.recvs") || epPolls != global("bbp.polls") {
		fail("endpoint Stats (sent=%d recv=%d polls=%d) disagree with metrics (%d/%d/%d)",
			epSent, epRecv, epPolls, global("bbp.sends"), global("bbp.recvs"), global("bbp.polls"))
	}
	if epPollW != global("bbp.poll_words") || epBursts != global("bbp.burst_polls") || epBurstW != global("bbp.burst_poll_words") {
		fail("endpoint Stats (pollWords=%d bursts=%d burstWords=%d) disagree with metrics (%d/%d/%d)",
			epPollW, epBursts, epBurstW, global("bbp.poll_words"), global("bbp.burst_polls"), global("bbp.burst_poll_words"))
	}
	// Every burst transaction the buses saw must be a BBP poll burst —
	// nothing else issues wide reads.
	if global("pci.pio_read_bursts") != epBursts || global("pci.pio_read_burst_words") != epBurstW {
		fail("pci burst counters (%d bursts / %d words) disagree with BBP poll bursts (%d / %d)",
			global("pci.pio_read_bursts"), global("pci.pio_read_burst_words"), epBursts, epBurstW)
	}

	// 3. Per node, bus occupancy must equal the word and byte counters
	// times the configured transaction costs — the §7 accounting.
	for i := range eps {
		wr := counter("pci.pio_write_words", i)
		rd := counter("pci.pio_read_words", i)
		bursts := counter("pci.pio_read_bursts", i)
		burstW := counter("pci.pio_read_burst_words", i)
		dma := counter("pci.dma_bytes", i)
		busy := counter("pci.busy_ns", i)
		// Each burst pays one full read round trip for its first word and
		// one data phase per additional word (pci.Bus.BurstReadCost).
		want := wr*int64(buscfg.PIOWriteWord) + rd*int64(buscfg.PIOReadWord) +
			bursts*int64(buscfg.PIOReadWord) + (burstW-bursts)*int64(buscfg.PIOReadBurstWord) +
			dma*int64(buscfg.DMAPerByte)
		if busy != want {
			fail("node %d: pci.busy_ns = %d, but %d wr + %d rd words + %d bursts (%d words) + %d DMA bytes cost %d ns",
				i, busy, wr, rd, bursts, burstW, dma, want)
		}
	}

	// The descriptor transfer is 3 words in the base protocol (offset,
	// length, sequence); the retry extension adds a checksum word.
	descW := int64(3)
	if bcfg.Retry.Enabled {
		descW = 4
	}
	dmaSend := size > 0 && size >= bcfg.Thresholds.SendDMA
	dmaRecv := size > 0 && size >= bcfg.Thresholds.RecvDMA
	dataW := int64(0)
	if size > 0 && !dmaSend {
		dataW = int64(pci.WordsFor(size))
	}

	// 4. The sender's word budget: payload + descriptor + one flag word
	// per receiver, nothing else.
	wantWr := dataW + descW + int64(len(recvs))
	if wr0 := counter("pci.pio_write_words", 0); wr0 != wantWr {
		fail("sender wrote %d PIO words; cost model predicts %d (data %d + desc %d + flags %d)",
			wr0, wantWr, dataW, descW, len(recvs))
	}
	if dmaSend && counter("pci.dma_bytes", 0) != int64(size) {
		fail("sender DMA bytes = %d, want the %d-byte payload", counter("pci.dma_bytes", 0), size)
	}

	// 5. Each receiver's word budget: the poll words not covered by
	// bursts (those are counted on the burst side), the descriptor, and
	// the payload (unless drained by DMA).
	dataRdW := int64(0)
	if size > 0 && !dmaRecv {
		dataRdW = int64(pci.WordsFor(size))
	}
	for _, r := range recvs {
		rd := counter("pci.pio_read_words", r)
		pollW := counter("bbp.poll_words", r)
		burstPollW := counter("bbp.burst_poll_words", r)
		want := (pollW - burstPollW) + descW + dataRdW
		if rd != want {
			fail("receiver %d read %d single PIO words; cost model predicts %d (poll words %d−%d + desc %d + data %d)",
				r, rd, want, pollW, burstPollW, descW, dataRdW)
		}
		if bursts, polls := counter("pci.pio_read_bursts", r), counter("bbp.burst_polls", r); bursts != polls {
			fail("receiver %d: pci saw %d read bursts but BBP issued %d burst polls", r, bursts, polls)
		}
		if dmaRecv && counter("pci.dma_bytes", r) != int64(size) {
			fail("receiver %d DMA bytes = %d, want %d", r, counter("pci.dma_bytes", r), size)
		}
	}

	// 6. The decomposition itself: trace spans vs counters × cost model.
	tPost, okPost := eventTime(rec, 0, "post", false)
	tFlag, okFlag := eventTime(rec, 0, "flag-set", true)
	if !okPost || !okFlag {
		fail("trace is missing post/flag-set events")
		return ok
	}
	setup := bcfg.Costs.SendSetup
	publish := sim.Duration(descW+int64(len(recvs))) * buscfg.PIOWriteWord
	publishModel := fmt.Sprintf("%d wr × %s", descW+int64(len(recvs)), buscfg.PIOWriteWord)
	if dmaSend {
		publish += buscfg.DMASetup + sim.Duration(size)*buscfg.DMAPerByte + buscfg.DMACompletionCheck
		publishModel = fmt.Sprintf("DMA %d B + %s", size, publishModel)
	} else if dataW > 0 {
		publish += sim.Duration(dataW) * buscfg.PIOWriteWord
		publishModel = fmt.Sprintf("%d wr × %s", dataW+descW+int64(len(recvs)), buscfg.PIOWriteWord)
	}
	drain := buscfg.PIOWriteWord // ACK toggle write
	drainModel := fmt.Sprintf("1 wr × %s", buscfg.PIOWriteWord)
	if bcfg.EarlyAck {
		// The transit handler acknowledged the post; the host consume
		// performs no ACK write.
		drain = 0
		drainModel = "early-ack (no host ACK write)"
	}
	if dmaRecv {
		drain += buscfg.DMASetup + sim.Duration(size)*buscfg.DMAPerByte + buscfg.DMACompletionCheck
		drainModel = "DMA " + fmt.Sprint(size) + " B + " + drainModel
	} else if dataRdW > 0 {
		drain += sim.Duration(dataRdW) * buscfg.PIOReadWord
		drainModel = fmt.Sprintf("%d rd × %s + %s", dataRdW, buscfg.PIOReadWord, drainModel)
	}
	// Deterministic floor of the flag-set→detect segment: the descriptor
	// read and bookkeeping always happen after the flag is seen. Wire
	// transit and poll-phase alignment sit on top and vary.
	detectFloor := sim.Duration(descW)*buscfg.PIOReadWord + bcfg.Costs.RecvBookkeeping

	if got := tPost.Sub(sent); got != setup {
		fail("send-call→post span %s != SendSetup %s", got, setup)
	}
	// A publish larger than the TX FIFO stalls behind the ring drain;
	// the span then exceeds the pure bus cost.
	fifoSafe := size+int(descW+int64(len(recvs)))*4 <= ring.NIC(0).NetworkConfig().TxFIFOBytes
	pubSpan := tFlag.Sub(tPost)
	if fifoSafe && pubSpan != publish {
		fail("sender publish span %s != cost-model %s (%s)", pubSpan, publish, publishModel)
	}
	if !fifoSafe && pubSpan < publish {
		fail("sender publish span %s below its bus cost floor %s", pubSpan, publish)
	}

	fmt.Println("\nper-layer decomposition — trace spans vs counters × cost model")
	fmt.Printf("  %-34s %12s  %12s  %s\n", "segment", "trace", "model", "derivation")
	fmt.Printf("  %-34s %12s  %12s  SendSetup\n", "software setup (call→post)", tPost.Sub(sent), setup)
	fmt.Printf("  %-34s %12s  %12s  %s\n", "sender publish (post→flag-set)", pubSpan, publish, publishModel)
	var tLast sim.Time
	for _, r := range recvs {
		tDetect, okD := eventTime(rec, r, "detect", false)
		tConsume, okC := eventTime(rec, r, "consume", true)
		if !okD || !okC {
			fail("receiver %d is missing detect/consume events", r)
			continue
		}
		transit := tDetect.Sub(tFlag)
		if transit < detectFloor {
			fail("receiver %d detected in %s, below the %s descriptor+bookkeeping floor", r, transit, detectFloor)
		}
		drainSpan := tConsume.Sub(tDetect)
		if drainSpan != drain {
			fail("receiver %d drain span %s != cost-model %s (%s)", r, drainSpan, drain, drainModel)
		}
		fmt.Printf("  rx%-2d %-29s %12s  %12s  wire + poll align (floor %s)\n", r, "transit+detect (flag-set→detect)", transit, "—", detectFloor)
		fmt.Printf("  rx%-2d %-29s %12s  %12s  %s\n", r, "drain (detect→consume)", drainSpan, drain, drainModel)
		if tConsume > tLast {
			tLast = tConsume
		}
	}
	fmt.Printf("  %-34s %12s\n", "one-way (call→last consume)", lastDone.Sub(sent))
	// The segments must telescope back to the measured latency — a guard
	// on this table's own arithmetic.
	if tLast != lastDone {
		fail("last consume at %s but the run measured %s", tLast, lastDone)
	}
	return ok
}
