// Command anatomy traces one BillBoard Protocol message end to end and
// prints its timeline — the decomposition behind the paper's 7.8 µs
// 4-byte one-way latency: post, descriptor and flag writes, ring
// replication, polling detection, data read, acknowledgement.
//
// Usage:
//
//	anatomy [-size 4] [-nodes 4] [-mcast]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	size := flag.Int("size", 4, "message payload bytes")
	nodes := flag.Int("nodes", 4, "ring size")
	mcast := flag.Bool("mcast", false, "broadcast to all nodes instead of unicast")
	flag.Parse()

	k := sim.NewKernel()
	ring, err := scramnet.New(k, scramnet.DefaultConfig(*nodes))
	if err != nil {
		log.Fatal(err)
	}
	ring.SetSingleWriterCheck(true)
	sys, err := core.New(ring, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.New()
	ring.SetTracer(rec)
	sys.SetTracer(rec)

	eps := make([]*core.Endpoint, *nodes)
	for i := range eps {
		if eps[i], err = sys.Attach(i); err != nil {
			log.Fatal(err)
		}
	}

	recvs := []int{1}
	if *mcast {
		recvs = nil
		for i := 1; i < *nodes; i++ {
			recvs = append(recvs, i)
		}
	}
	var sent sim.Time
	var lastDone sim.Time
	k.Spawn("sender", func(p *sim.Proc) {
		p.Delay(10 * sim.Microsecond) // receivers already polling
		sent = p.Now()
		if *mcast {
			if err := eps[0].Mcast(p, recvs, make([]byte, *size)); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := eps[0].Send(p, 1, make([]byte, *size)); err != nil {
				log.Fatal(err)
			}
		}
	})
	for _, r := range recvs {
		r := r
		k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
			buf := make([]byte, *size+1)
			if _, err := eps[r].Recv(p, 0, buf); err != nil {
				log.Fatal(err)
			}
			if p.Now() > lastDone {
				lastDone = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	kind := "unicast"
	if *mcast {
		kind = fmt.Sprintf("%d-way broadcast", len(recvs))
	}
	fmt.Printf("anatomy of a %d-byte BBP %s on a %d-node ring\n\n", *size, kind, *nodes)
	rec.Render(os.Stdout)
	fmt.Printf("\none-way latency (send call to last consume): %s\n", lastDone.Sub(sent))
	fmt.Printf("ring packets injected: %d   applies: %d\n",
		rec.Count("inject"), rec.Count("apply"))
	if span, ok := rec.Span("post", "consume"); ok {
		fmt.Printf("post→consume span: %s\n", span)
	}
}
