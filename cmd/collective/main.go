// Command collective measures MPI broadcast and barrier latency — the
// tool behind Figures 4–6.
//
// Usage:
//
//	collective -op bcast [-net ...] [-impl p2p|mcast] [-nodes 4] [-size 512]
//	collective -op barrier [-net ...] [-impl p2p|mcast] [-nodes 4]
//	collective -op bbp-bcast [-nodes 4] [-size 512]   (raw BillBoard API)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	op := flag.String("op", "bcast", "operation: bcast, barrier, or bbp-bcast")
	net := flag.String("net", "scramnet", "network (see cmd/pingpong)")
	impl := flag.String("impl", "mcast", "collective implementation: p2p, mcast, or nic (barrier only)")
	nodes := flag.Int("nodes", 4, "cluster size")
	size := flag.Int("size", 512, "payload bytes (bcast only)")
	flag.Parse()

	nw := cluster.Network(*net)
	if (*impl == "mcast" || *impl == "nic") && nw != cluster.SCRAMNet {
		fmt.Fprintln(os.Stderr, "multicast and NIC-combined collectives require -net scramnet")
		os.Exit(2)
	}
	switch *op {
	case "bcast":
		bi := bench.BcastP2P
		if *impl == "mcast" {
			bi = bench.BcastNative
		}
		us := bench.MPIBcast(nw, bi, *nodes, *size)
		fmt.Printf("MPI_Bcast  %-14s %-5s  %d nodes  %5d B  %9.1fµs\n", nw, *impl, *nodes, *size, us)
	case "barrier":
		bi := bench.BarrierP2P
		switch *impl {
		case "mcast":
			bi = bench.BarrierNative
		case "nic":
			bi = bench.BarrierNIC
		}
		us := bench.MPIBarrier(nw, bi, *nodes)
		fmt.Printf("MPI_Barrier %-14s %-5s  %d nodes  %9.1fµs\n", nw, *impl, *nodes, us)
	case "bbp-bcast":
		us := bench.BroadcastAPI(*nodes, *size)
		fmt.Printf("bbp_Mcast  %d nodes  %5d B  %9.1fµs (API layer)\n", *nodes, *size, us)
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q\n", *op)
		os.Exit(2)
	}
}
