// Command pingpong measures one-way message latency on any testbed
// network, at the messaging-API layer or the MPI layer, over a range of
// message sizes — the tool behind Figures 1–3.
//
// Usage:
//
//	pingpong [-net scramnet|fastethernet|atm|myrinet-api|myrinet-tcp]
//	         [-layer api|mpi] [-min 0] [-max 1024] [-points 16]
//
// Sizes are swept geometrically (plus zero) from -min to -max.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	net := flag.String("net", "scramnet", "network: scramnet, fastethernet, atm, myrinet-api, myrinet-tcp")
	layer := flag.String("layer", "api", "measurement layer: api or mpi")
	minSize := flag.Int("min", 4, "smallest non-zero message size")
	maxSize := flag.Int("max", 1024, "largest message size")
	points := flag.Int("points", 12, "number of sizes to sweep")
	flag.Parse()

	nw := cluster.Network(*net)
	found := false
	for _, n := range cluster.Networks {
		if n == nw {
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown network %q; one of %v\n", *net, cluster.Networks)
		os.Exit(2)
	}
	if *layer == "mpi" && (nw == cluster.MyrinetAPI || nw == cluster.MyrinetTCP) {
		// Supported, but note it is an extension beyond the paper's
		// Figure 3, which covers SCRAMNet, Fast Ethernet and ATM.
		fmt.Fprintln(os.Stderr, "note: MPI over Myrinet is an extension beyond the paper's Figure 3")
	}

	measure := bench.OneWayAPI
	if *layer == "mpi" {
		measure = bench.OneWayMPI
	} else if *layer != "api" {
		fmt.Fprintf(os.Stderr, "unknown layer %q; api or mpi\n", *layer)
		os.Exit(2)
	}

	fmt.Printf("one-way latency, %s, %s layer (%d-trip average)\n", nw, *layer, bench.Iters)
	fmt.Printf("%10s  %12s\n", "bytes", "latency")
	for _, n := range sweep(*minSize, *maxSize, *points) {
		fmt.Printf("%10d  %10.2fµs\n", n, measure(nw, n))
	}
}

// sweep returns {0} ∪ a geometric ramp from min to max with the given
// number of points.
func sweep(min, max, points int) []int {
	out := []int{0}
	if min < 1 {
		min = 1
	}
	if points < 2 {
		return append(out, max)
	}
	step := math.Pow(float64(max)/float64(min), 1/float64(points-1))
	last := -1
	f := float64(min)
	for i := 0; i < points; i++ {
		n := int(f + 0.5)
		if n != last {
			out = append(out, n)
			last = n
		}
		f *= step
	}
	return out
}
