// Command figures regenerates every figure and table of the paper's
// evaluation (§5) from the simulated testbed and prints them as aligned
// text tables. With -csv DIR it also writes one CSV per figure.
//
// Usage:
//
//	figures [-fig N] [-csv DIR] [-wide] [-json [PATH]]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// -fig selects a single figure (1..6, or 0 for the §2 raw-hardware
// table); default runs everything. -wide extends the size axis beyond
// the paper's 1000-byte panels to show the large-message crossovers.
// -faults appends the fault-sweep extension: BBP one-way latency vs
// ring loss rate with the retry extension recovering drops.
// -json PATH runs the perf-regression suite (internal/bench/report)
// instead of the text tables and writes the schema-versioned,
// byte-stable report to PATH ("-" for stdout); this is what regenerates
// the checked-in BENCH_figures.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/bench/report"
	"repro/internal/prof"
)

func main() {
	fig := flag.Int("fig", -1, "regenerate a single figure (0=raw table, 1..6)")
	csvDir := flag.String("csv", "", "also write CSVs into this directory")
	wide := flag.Bool("wide", false, "extend size axes to show large-message crossovers")
	faults := flag.Bool("faults", false, "also run the fault-sweep extension (latency vs loss rate)")
	jsonPath := flag.String("json", "", "write the perf-regression report to this path (\"-\" for stdout) instead of text tables")
	startProf, stopProf := prof.Flags()
	flag.Parse()
	startProf()
	defer stopProf()

	if *jsonPath != "" {
		rep := report.Run(report.DefaultOptions())
		if err := rep.Check(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			stopProf()
			os.Exit(1)
		}
		out := report.Marshal(rep)
		if *jsonPath == "-" {
			os.Stdout.Write(out)
			return
		}
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	sizes := bench.FullSizes
	if *wide {
		sizes = bench.WideSizes
	}
	all := *fig < 0

	writeCSV := func(name string, ss []bench.Series) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		bench.RenderCSV(f, ss)
	}

	if all || *fig == 0 {
		fmt.Println("SCRAMNet raw characteristics (paper §2)")
		fmt.Println("---------------------------------------")
		fmt.Printf("fixed 4-byte packet mode: %6.2f MB/s  (paper: 6.5 MB/s)\n", bench.RingThroughput(false))
		fmt.Printf("variable packet mode:     %6.2f MB/s  (paper: 16.7 MB/s)\n", bench.RingThroughput(true))
		fmt.Println()
	}
	if all || *fig == 1 {
		small := bench.Fig1(bench.SmallSizes)
		bench.RenderSeries(os.Stdout, "Figure 1a: SCRAMNet one-way latency, 0-64 bytes (API vs MPI)", small)
		full := bench.Fig1(sizes)
		bench.RenderSeries(os.Stdout, "Figure 1b: SCRAMNet one-way latency, 0-1000 bytes (API vs MPI)", full)
		writeCSV("fig1.csv", full)
	}
	if all || *fig == 2 {
		s := bench.Fig2(sizes)
		bench.RenderSeries(os.Stdout, "Figure 2: one-way latency across networks, API layer", s)
		writeCSV("fig2.csv", s)
	}
	if all || *fig == 3 {
		s := bench.Fig3(sizes)
		bench.RenderSeries(os.Stdout, "Figure 3: one-way latency across networks, MPI layer", s)
		writeCSV("fig3.csv", s)
	}
	if all || *fig == 4 {
		s := bench.Fig4(sizes)
		bench.RenderSeries(os.Stdout, "Figure 4: SCRAMNet point-to-point vs 4-node broadcast (API layer)", s)
		writeCSV("fig4.csv", s)
	}
	if all || *fig == 5 {
		s := bench.Fig5(sizes)
		bench.RenderSeries(os.Stdout, "Figure 5: 4-node MPI_Bcast, SCRAMNet vs Fast Ethernet", s)
		writeCSV("fig5.csv", s)
	}
	if all || *fig == 6 {
		bench.RenderFig6(os.Stdout, bench.Fig6())
	}
	if *faults {
		bench.RenderFaultSweep(os.Stdout, bench.FaultSweep(bench.DefaultFaultSweepConfig()))
	}
}
