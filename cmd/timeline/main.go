// Command timeline joins the causal span trace with the periodic
// metrics snapshot stream for a fully observed run of the simulated
// testbed.
//
// In sweep mode (the default) it replays one point of the EXPERIMENTS.md
// E6 fault sweep — 4-node SCRAMNet ring, retry-enabled BBP, a scripted
// loss window — with tracing and snapshot streaming on, prints the
// per-message latency breakdown table rebuilt from spans alone, and
// flags the snapshot intervals where retransmissions and PCI bus
// occupancy spiked together. With -chrome it also exports the span
// stream as Chrome trace_event JSON for chrome://tracing / Perfetto.
// The command exits nonzero when a lossy run produces no co-spike
// interval: on this workload retry storms must be visible on the bus,
// so an empty correlation table means the observability pipeline broke.
//
// In anatomy mode it traces one message (the paper's 7.8 µs scenario)
// and verifies that the decomposition rebuilt from spans alone agrees
// with the counter × cost-model decomposition cmd/anatomy computes,
// exiting nonzero on any disagreement.
//
// Usage:
//
//	timeline [-mode sweep] [-rate 0.15] [-seed 1999] [-every 100] [-cap N] [-msg s:q] [-chrome out.json]
//	timeline -mode anatomy [-size 4] [-nodes 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "sweep", "sweep | anatomy")
	rate := flag.Float64("rate", 0.15, "sweep: ring packet-drop probability")
	seed := flag.Uint64("seed", 1999, "sweep: fault-script seed")
	every := flag.Int64("every", 100, "sweep: snapshot period in simulated µs")
	cap := flag.Int("cap", 0, "sweep: trace ring-buffer capacity (0 = unbounded)")
	msg := flag.String("msg", "", "sweep: focus on one message id, as sender:seq")
	chrome := flag.String("chrome", "", "sweep: write Chrome trace_event JSON here")
	size := flag.Int("size", 4, "anatomy: message payload bytes")
	nodes := flag.Int("nodes", 4, "anatomy: ring size")
	flag.Parse()

	switch *mode {
	case "anatomy":
		anatomy(*size, *nodes)
	case "sweep":
		sweep(*rate, *seed, *every, *cap, *msg, *chrome)
	default:
		log.Fatalf("timeline: unknown mode %q", *mode)
	}
}

// anatomy reproduces the 7.8 µs decomposition from spans alone and
// checks it against the cost model.
func anatomy(size, nodes int) {
	res, err := timeline.RunAnatomy(size, nodes)
	if err != nil {
		log.Fatal(err)
	}
	b := res.Breakdown
	fmt.Printf("anatomy of a %d-byte BBP unicast on a %d-node ring, from spans alone\n\n", size, nodes)
	timeline.RenderBreakdowns(os.Stdout, []timeline.Breakdown{b})
	fmt.Printf("\n  %-34s %12s  %12s\n", "segment", "spans", "cost model")
	fmt.Printf("  %-34s %12s  %12s\n", "sender publish (post→flag-set)", b.Publish(), res.ModelPublish)
	fmt.Printf("  %-34s %12s  %12s  (deterministic floor)\n", "transit+detect (flag-set→detect)", b.Transit(), res.DetectFloor)
	fmt.Printf("  %-34s %12s  %12s\n", "drain (detect→consume)", b.Drain(), res.ModelDrain)
	fmt.Printf("  %-34s %12s\n", "post→consume", b.Total())
	fmt.Printf("  %-34s %12s\n", "one-way (call→consume)", res.OneWay)
	if len(res.Mismatches) > 0 {
		fmt.Println("\nspan-derived decomposition DISAGREES with the cost model:")
		for _, m := range res.Mismatches {
			fmt.Println("  MISMATCH:", m)
		}
		os.Exit(1)
	}
	fmt.Println("\nagreement OK: the span-derived decomposition matches the")
	fmt.Println("counter × cost-model figures cmd/anatomy computes.")
}

// sweep replays one E6 fault-sweep point with full observability.
func sweep(rate float64, seed uint64, everyUS int64, cap int, msgSel, chromeOut string) {
	cfg := timeline.DefaultSweepConfig()
	cfg.Rate = rate
	cfg.Seed = seed
	cfg.TraceCap = cap
	if everyUS > 0 {
		cfg.SnapshotEvery = sim.Duration(everyUS) * sim.Microsecond
	}
	res, err := timeline.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fault-sweep point: rate=%.2f seed=%d — %d/%d messages delivered, %d snapshot points, %d trace events\n\n",
		rate, seed, res.Delivered, res.Sent, len(res.Points), len(res.Rec.Events()))

	bds := res.Breakdowns
	if msgSel != "" {
		var s int
		var q uint32
		if _, err := fmt.Sscanf(msgSel, "%d:%d", &s, &q); err != nil {
			log.Fatalf("timeline: bad -msg %q, want sender:seq", msgSel)
		}
		want := trace.MsgID(s, q)
		var kept []timeline.Breakdown
		for _, b := range bds {
			if b.Msg == want {
				kept = append(kept, b)
			}
		}
		if len(kept) == 0 {
			log.Fatalf("timeline: message %s not in the trace", msgSel)
		}
		bds = kept
	}
	fmt.Println("per-message latency breakdown (rebuilt from spans alone)")
	timeline.RenderBreakdowns(os.Stdout, bds)
	if d := res.Rec.Drops(); d > 0 {
		fmt.Printf("(capped recorder evicted %d events; breakdowns of early messages may be partial)\n", d)
	}

	fmt.Println("\nco-spike intervals: Δbbp.retransmits > 0 and Δpci.busy_ns above the median window")
	if len(res.Intervals) == 0 {
		fmt.Println("(none)")
	} else {
		timeline.RenderIntervals(os.Stdout, res.Intervals)
	}

	if chromeOut != "" {
		f, err := os.Create(chromeOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := timeline.WriteChromeTrace(f, res.Rec); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing)\n", chromeOut)
	}

	if rate > 0 && len(res.Intervals) == 0 {
		fmt.Println("\nFAILED: a lossy run must show at least one interval where retry")
		fmt.Println("traffic and bus occupancy spike together; none was found.")
		os.Exit(1)
	}
	if rate > 0 {
		total := int64(0)
		for _, iv := range res.Intervals {
			total += iv.DRetrans
		}
		fmt.Printf("\ncorrelation OK: %d interval(s) capture %d retransmit(s) alongside above-median bus growth\n",
			len(res.Intervals), total)
	}
}
