// Package repro is a full reproduction, in simulation, of "Low-Latency
// Message Passing on Workstation Clusters using SCRAMNet" (Moorthy et
// al., IPPS 1999).
//
// The paper builds the BillBoard Protocol (BBP) — a user-level,
// zero-copy, lock-free message passing protocol over SCRAMNet's
// replicated non-coherent shared-memory ring — plus an MPICH-derived
// MPI whose broadcast and barrier use the BBP's single-step hardware
// multicast, and evaluates both against Fast Ethernet, ATM and Myrinet
// on a 4-node Pentium II cluster.
//
// Since the 1999 hardware no longer exists, everything runs on a
// deterministic discrete-event simulation (internal/sim) with models of
// the SCRAMNet ring, the PCI bus, and the three baseline fabrics, each
// calibrated against the latency and bandwidth anchors published in the
// paper. See DESIGN.md for the substitution table and EXPERIMENTS.md
// for measured-vs-paper numbers on every figure.
//
// This package is the public facade: build a testbed on any of the five
// network configurations and obtain message endpoints or an MPI world.
//
//	k := repro.NewKernel()
//	tb, _ := repro.NewTestbed(k, repro.SCRAMNet, 4)
//	...
//	w, _ := repro.NewMPI(k, repro.SCRAMNet, 4, true)
//	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) { ... })
//	k.Run()
package repro

import (
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Network names one of the five testbed interconnects.
type Network = cluster.Network

// The testbed networks of the paper's Figures 2 and 3, plus the §7
// hybrid (BBP for small messages, Myrinet API for large) extension.
const (
	SCRAMNet     = cluster.SCRAMNet
	FastEthernet = cluster.FastEthernet
	ATM          = cluster.ATM
	MyrinetAPI   = cluster.MyrinetAPI
	MyrinetTCP   = cluster.MyrinetTCP
	Hybrid       = cluster.Hybrid
)

// Testbed is a built cluster: per-node message endpoints over the
// chosen network, plus the SCRAMNet ring and BillBoard system when the
// network is SCRAMNet.
type Testbed = cluster.Cluster

// NewKernel returns a fresh simulation kernel (virtual clock at zero).
func NewKernel() *sim.Kernel { return sim.NewKernel() }

// NewTestbed builds an n-node cluster on the given network with default
// (paper-calibrated) parameters.
func NewTestbed(k *sim.Kernel, net Network, nodes int) (*Testbed, error) {
	return cluster.New(k, cluster.Options{Nodes: nodes, Net: net})
}

// NewMPI builds an n-rank MPI world over the given network. When mcast
// is true (and the network is SCRAMNet), MPI_Bcast and MPI_Barrier use
// the BillBoard multicast fast path, as in the paper's modified MPICH.
func NewMPI(k *sim.Kernel, net Network, nodes int, mcast bool) (*mpi.World, error) {
	_, w, err := cluster.NewMPIWorld(k, net, nodes, mcast)
	return w, err
}
