package repro_test

// One benchmark per table/figure of the paper's evaluation (§5), plus
// ablation benches for the design choices DESIGN.md calls out. Each
// bench runs the deterministic simulation and reports the figure's
// metric as virtual microseconds (vus/op) or MB/s alongside Go's wall
//-clock numbers; the virtual metrics are the reproduction results.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/mpi"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/tcpip"
)

// reportUS attaches a virtual-latency metric to the bench.
func reportUS(b *testing.B, us float64) {
	b.ReportMetric(us, "vus/op")
}

// --- §2 raw-hardware table -------------------------------------------

func BenchmarkRaw_FixedModeThroughput(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.RingThroughput(false)
	}
	b.ReportMetric(mbps, "MB/s")
}

func BenchmarkRaw_VariableModeThroughput(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.RingThroughput(true)
	}
	b.ReportMetric(mbps, "MB/s")
}

// --- Figure 1: BBP API vs MPI one-way latency on SCRAMNet ------------

func benchOneWayAPI(b *testing.B, net cluster.Network, n int) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.OneWayAPI(net, n)
	}
	reportUS(b, us)
}

func benchOneWayMPI(b *testing.B, net cluster.Network, n int) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.OneWayMPI(net, n)
	}
	reportUS(b, us)
}

func BenchmarkFig1_API_0B(b *testing.B)    { benchOneWayAPI(b, cluster.SCRAMNet, 0) }
func BenchmarkFig1_API_4B(b *testing.B)    { benchOneWayAPI(b, cluster.SCRAMNet, 4) }
func BenchmarkFig1_API_64B(b *testing.B)   { benchOneWayAPI(b, cluster.SCRAMNet, 64) }
func BenchmarkFig1_API_1000B(b *testing.B) { benchOneWayAPI(b, cluster.SCRAMNet, 1000) }
func BenchmarkFig1_MPI_0B(b *testing.B)    { benchOneWayMPI(b, cluster.SCRAMNet, 0) }
func BenchmarkFig1_MPI_4B(b *testing.B)    { benchOneWayMPI(b, cluster.SCRAMNet, 4) }
func BenchmarkFig1_MPI_64B(b *testing.B)   { benchOneWayMPI(b, cluster.SCRAMNet, 64) }
func BenchmarkFig1_MPI_1000B(b *testing.B) { benchOneWayMPI(b, cluster.SCRAMNet, 1000) }

// --- Figure 2: API-layer latency across networks ---------------------

func BenchmarkFig2_SCRAMNet_256B(b *testing.B)     { benchOneWayAPI(b, cluster.SCRAMNet, 256) }
func BenchmarkFig2_FastEthernet_256B(b *testing.B) { benchOneWayAPI(b, cluster.FastEthernet, 256) }
func BenchmarkFig2_ATM_256B(b *testing.B)          { benchOneWayAPI(b, cluster.ATM, 256) }
func BenchmarkFig2_MyrinetAPI_256B(b *testing.B)   { benchOneWayAPI(b, cluster.MyrinetAPI, 256) }
func BenchmarkFig2_MyrinetTCP_256B(b *testing.B)   { benchOneWayAPI(b, cluster.MyrinetTCP, 256) }

// --- Figure 3: MPI-layer latency across networks ---------------------

func BenchmarkFig3_SCRAMNet_256B(b *testing.B)     { benchOneWayMPI(b, cluster.SCRAMNet, 256) }
func BenchmarkFig3_FastEthernet_256B(b *testing.B) { benchOneWayMPI(b, cluster.FastEthernet, 256) }
func BenchmarkFig3_ATM_256B(b *testing.B)          { benchOneWayMPI(b, cluster.ATM, 256) }

// --- Figure 4: point-to-point vs 4-node broadcast (BBP API) ----------

func BenchmarkFig4_PointToPoint_4B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.UnicastAPI(4)
	}
	reportUS(b, us)
}

func BenchmarkFig4_Broadcast4_4B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.BroadcastAPI(4, 4)
	}
	reportUS(b, us)
}

func BenchmarkFig4_Broadcast4_1000B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.BroadcastAPI(4, 1000)
	}
	reportUS(b, us)
}

// --- Figure 5: MPI_Bcast implementations ------------------------------

func benchBcast(b *testing.B, net cluster.Network, impl bench.BcastImpl, n int) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.MPIBcast(net, impl, 4, n)
	}
	reportUS(b, us)
}

func BenchmarkFig5_FE_P2P_512B(b *testing.B) {
	benchBcast(b, cluster.FastEthernet, bench.BcastP2P, 512)
}
func BenchmarkFig5_SCR_P2P_512B(b *testing.B) {
	benchBcast(b, cluster.SCRAMNet, bench.BcastP2P, 512)
}
func BenchmarkFig5_SCR_Mcast_512B(b *testing.B) {
	benchBcast(b, cluster.SCRAMNet, bench.BcastNative, 512)
}

// --- Figure 6: MPI_Barrier implementations ----------------------------

func benchBarrier(b *testing.B, net cluster.Network, impl bench.BarrierImpl, nodes int) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.MPIBarrier(net, impl, nodes)
	}
	reportUS(b, us)
}

func BenchmarkFig6_SCR_Mcast_3(b *testing.B) {
	benchBarrier(b, cluster.SCRAMNet, bench.BarrierNative, 3)
}
func BenchmarkFig6_SCR_Mcast_4(b *testing.B) {
	benchBarrier(b, cluster.SCRAMNet, bench.BarrierNative, 4)
}
func BenchmarkFig6_SCR_P2P_3(b *testing.B) { benchBarrier(b, cluster.SCRAMNet, bench.BarrierP2P, 3) }
func BenchmarkFig6_SCR_P2P_4(b *testing.B) { benchBarrier(b, cluster.SCRAMNet, bench.BarrierP2P, 4) }
func BenchmarkFig6_FE_3(b *testing.B)      { benchBarrier(b, cluster.FastEthernet, bench.BarrierP2P, 3) }
func BenchmarkFig6_ATM_3(b *testing.B)     { benchBarrier(b, cluster.ATM, bench.BarrierP2P, 3) }

// --- Ablations (DESIGN.md §4) -----------------------------------------

// Extension: the §7 hybrid subsystem — small messages at SCRAMNet
// latency, large messages at Myrinet bandwidth.
func BenchmarkExt_Hybrid_4B(b *testing.B)  { benchOneWayAPI(b, cluster.Hybrid, 4) }
func BenchmarkExt_Hybrid_8KB(b *testing.B) { benchOneWayAPI(b, cluster.Hybrid, 8192) }
func BenchmarkExt_Hierarchy_4B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.HierarchyPingPong(2, 2, 4)
	}
	reportUS(b, us)
}

func BenchmarkExt_Bandwidth_SCRAMNet(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.Throughput(cluster.SCRAMNet, 16384, 16)
	}
	b.ReportMetric(mbps, "MB/s")
}

func BenchmarkExt_Bandwidth_MyrinetAPI(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.Throughput(cluster.MyrinetAPI, 16384, 16)
	}
	b.ReportMetric(mbps, "MB/s")
}

func BenchmarkExt_MessageRate_SCRAMNet_8B(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = bench.MessageRate(cluster.SCRAMNet, 8, 200)
	}
	b.ReportMetric(rate, "msgs/s")
}

func BenchmarkExt_MessageRate_FE_8B(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = bench.MessageRate(cluster.FastEthernet, 8, 200)
	}
	b.ReportMetric(rate, "msgs/s")
}

// Ablation: barrier algorithm choice on an 8-node SCRAMNet cluster —
// coordinator+mcast vs binomial tree vs dissemination.
func BenchmarkAblation_BarrierAlgorithms8(b *testing.B) {
	measure := func(algo string) float64 {
		k := sim.NewKernel()
		_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, 8, algo == "mcast")
		if err != nil {
			b.Fatal(err)
		}
		var last sim.Time
		w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
			var err error
			switch algo {
			case "mcast":
				err = c.BarrierMcast(p)
			case "tree":
				err = c.BarrierTree(p)
			case "dissemination":
				err = c.BarrierDissemination(p)
			}
			if err != nil {
				b.Error(err)
				return
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		return last.Sub(0).Microseconds()
	}
	var mcast, tree, diss float64
	for i := 0; i < b.N; i++ {
		mcast = measure("mcast")
		tree = measure("tree")
		diss = measure("dissemination")
	}
	b.ReportMetric(mcast, "mcast-vus")
	b.ReportMetric(tree, "tree-vus")
	b.ReportMetric(diss, "dissem-vus")
}

func BenchmarkExt_BarrierScaling16(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.MPIBarrier(cluster.SCRAMNet, bench.BarrierNative, 16)
	}
	reportUS(b, us)
}

// Ablation: interrupt-driven receive (the paper's §7 future work) vs
// polling, 4-byte BBP message.
func BenchmarkAblation_InterruptVsPolling(b *testing.B) {
	measure := func(interrupts bool) float64 {
		k := sim.NewKernel()
		defer k.Close()
		bbpCfg := core.DefaultConfig()
		bbpCfg.InterruptDriven = interrupts
		c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbpCfg})
		if err != nil {
			b.Fatal(err)
		}
		var recvd, sent sim.Time
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 8)
			if _, err := c.Endpoints[1].Recv(p, 0, buf); err != nil {
				panic(err)
			}
			recvd = p.Now()
		})
		k.Spawn("tx", func(p *sim.Proc) {
			p.Delay(10 * sim.Microsecond)
			sent = p.Now()
			if err := c.Endpoints[0].Send(p, 1, []byte{1, 2, 3, 4}); err != nil {
				panic(err)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		return recvd.Sub(sent).Microseconds()
	}
	var poll, intr float64
	for i := 0; i < b.N; i++ {
		poll = measure(false)
		intr = measure(true)
	}
	b.ReportMetric(poll, "poll-vus")
	b.ReportMetric(intr, "intr-vus")
}

// Ablation: PIO-only vs DMA-enabled BBP data movement, 1000-byte
// message (the send/recv DMA thresholds of internal/core).
func BenchmarkAblation_PIOVsDMA_1000B(b *testing.B) {
	measure := func(pioOnly bool) float64 {
		k := sim.NewKernel()
		defer k.Close()
		c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, PIOOnlyBBP: pioOnly})
		if err != nil {
			b.Fatal(err)
		}
		var recvd, sent sim.Time
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 1024)
			if _, err := c.Endpoints[1].Recv(p, 0, buf); err != nil {
				panic(err)
			}
			recvd = p.Now()
		})
		k.Spawn("tx", func(p *sim.Proc) {
			p.Delay(10 * sim.Microsecond)
			sent = p.Now()
			if err := c.Endpoints[0].Send(p, 1, make([]byte, 1000)); err != nil {
				panic(err)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		return recvd.Sub(sent).Microseconds()
	}
	var pio, dma float64
	for i := 0; i < b.N; i++ {
		pio = measure(true)
		dma = measure(false)
	}
	b.ReportMetric(pio, "pio-vus")
	b.ReportMetric(dma, "dma-vus")
}

// Ablation: fixed vs variable packet mode for a 1000-byte message.
func BenchmarkAblation_FixedVsVariableMode_1000B(b *testing.B) {
	measure := func(mode scramnet.Mode) float64 {
		k := sim.NewKernel()
		defer k.Close()
		ring := scramnet.DefaultConfig(4)
		ring.Mode = mode
		c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, Ring: &ring})
		if err != nil {
			b.Fatal(err)
		}
		var recvd, sent sim.Time
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 1024)
			if _, err := c.Endpoints[1].Recv(p, 0, buf); err != nil {
				panic(err)
			}
			recvd = p.Now()
		})
		k.Spawn("tx", func(p *sim.Proc) {
			p.Delay(10 * sim.Microsecond)
			sent = p.Now()
			if err := c.Endpoints[0].Send(p, 1, make([]byte, 1000)); err != nil {
				panic(err)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		return recvd.Sub(sent).Microseconds()
	}
	var fixed, variable float64
	for i := 0; i < b.N; i++ {
		fixed = measure(scramnet.FixedPackets)
		variable = measure(scramnet.VariablePackets)
	}
	b.ReportMetric(fixed, "fixed-vus")
	b.ReportMetric(variable, "variable-vus")
}

// Ablation: the Nagle + delayed-ACK request-response stall on Fast
// Ethernet (two small sends, then an echo), vs TCP_NODELAY behavior.
func BenchmarkAblation_NagleDelayedAck(b *testing.B) {
	measure := func(nagle bool, delayed sim.Duration) float64 {
		k := sim.NewKernel()
		defer k.Close()
		fab, err := ethernet.New(k, ethernet.DefaultConfig(2))
		if err != nil {
			b.Fatal(err)
		}
		cfg := tcpip.FastEthernetProfile()
		cfg.Nagle = nagle
		cfg.DelayedAck = delayed
		s0, s1 := tcpip.NewStack(k, fab, 0, cfg), tcpip.NewStack(k, fab, 1, cfg)
		var elapsed sim.Duration
		k.Spawn("client", func(p *sim.Proc) {
			start := p.Now()
			if err := s0.Send(p, 1, []byte("one")); err != nil {
				panic(err)
			}
			if err := s0.Send(p, 1, []byte("two")); err != nil {
				panic(err)
			}
			buf := make([]byte, 16)
			if _, err := s0.Recv(p, 1, buf); err != nil {
				panic(err)
			}
			elapsed = p.Now().Sub(start)
		})
		k.Spawn("server", func(p *sim.Proc) {
			buf := make([]byte, 16)
			for i := 0; i < 2; i++ {
				if _, err := s1.Recv(p, 0, buf); err != nil {
					panic(err)
				}
			}
			if err := s1.Send(p, 0, []byte("ok")); err != nil {
				panic(err)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		return elapsed.Microseconds()
	}
	var nodelay, stalled float64
	for i := 0; i < b.N; i++ {
		nodelay = measure(false, 0)
		stalled = measure(true, 500*sim.Microsecond)
	}
	b.ReportMetric(nodelay, "nodelay-vus")
	b.ReportMetric(stalled, "nagle-vus")
}

// Ablation: eager/rendezvous threshold — a 32 KiB MPI message sent
// eagerly vs via rendezvous.
func BenchmarkAblation_EagerVsRendezvous_32K(b *testing.B) {
	measure := func(eagerMax int) float64 {
		k := sim.NewKernel()
		defer k.Close()
		c, err := cluster.New(k, cluster.Options{Nodes: 2, Net: cluster.FastEthernet})
		if err != nil {
			b.Fatal(err)
		}
		cfg := mpi.DefaultConfig()
		cfg.EagerMax = eagerMax
		cfg.ChunkSize = eagerMax
		w := mpi.NewWorld(c.Endpoints, cfg)
		var recvd, sent sim.Time
		w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
			if cm.Rank() == 0 {
				p.Delay(10 * sim.Microsecond)
				sent = p.Now()
				if err := cm.Send(p, 1, 0, make([]byte, 32<<10)); err != nil {
					panic(err)
				}
			} else {
				buf := make([]byte, 32<<10)
				if _, err := cm.Recv(p, 0, 0, buf); err != nil {
					panic(err)
				}
				recvd = p.Now()
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		return recvd.Sub(sent).Microseconds()
	}
	var eager, rndv float64
	for i := 0; i < b.N; i++ {
		eager = measure(64 << 10) // 32K < EagerMax: eager
		rndv = measure(16 << 10)  // 32K > EagerMax: rendezvous
	}
	b.ReportMetric(eager, "eager-vus")
	b.ReportMetric(rndv, "rndv-vus")
}
